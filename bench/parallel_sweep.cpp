// Parallel sweep: what does the partitioned engine buy on one big run?
//
// Each case is a scale_sweep cluster world (zoned gossip fan-out 3, job
// burst on the even nodes, zone-sharded balancer) executed once per worker
// count over the same partitioned schedule — workers(1) and workers(N) are
// bit-identical by construction, so the sweep both *checks* that (events
// and makespan must agree across worker counts, enforced here and again by
// tools/perf_gate) and *measures* the wall-clock speedup curve:
//
//   events / sim_sec      deterministic; identical for every worker count
//   wall_sec per workers  host wall time of the same run on 1/2/4 threads
//   host_cpus             recorded so the gate only enforces the speedup
//                         floor where the hardware can deliver one (a
//                         1-CPU CI container cannot)
//
// tools/perf_gate --parallel-input consumes the --json output and gates it
// against the committed BENCH_parallel.json. Grids:
//
//   --quick    256 nodes (16x16), workers 1/2/4          (CI smoke)
//   (default)  quick + 2000 nodes (20x100)               (the 2k claim)
//   --full     default + 10000 nodes (100x100)

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "balancer/cluster_sim.hpp"
#include "balancer/load_balancer.hpp"
#include "driver/builder.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace ampom;

constexpr std::uint32_t kFanOut = 3;
constexpr std::size_t kWorkerCounts[] = {1, 2, 4};

struct CaseSpec {
  std::uint32_t zones;
  std::uint32_t nodes_per_zone;
  std::uint32_t procs_per_node;
};

struct WorkerResult {
  std::size_t workers;
  std::uint64_t events;
  double sim_sec;
  double wall_sec;
  double events_per_sec;
};

struct CaseResult {
  std::uint32_t nodes;
  std::uint32_t zones;
  std::uint64_t procs;
  std::vector<WorkerResult> runs;
};

balancer::JobSpec scale_job(net::NodeId home, std::uint64_t index) {
  balancer::JobSpec job;
  job.home = home;
  job.label = "scale";
  job.start = sim::Time::from_ms(25 * (index % 8));
  job.make_workload = [index] {
    return std::make_unique<workload::HotColdStream>(
        2 * sim::kMiB, /*hot_pages=*/64, /*touches=*/4000 + 500 * (index % 5),
        /*cold_fraction=*/0.05, sim::Time::from_us(100));
  };
  return job;
}

WorkerResult run_once(const CaseSpec& spec, std::size_t workers, std::uint64_t& procs_out) {
  const driver::Scenario scenario = driver::ScenarioBuilder{}
                                        .scheme(driver::Scheme::Ampom)
                                        .topology(spec.zones, spec.nodes_per_zone)
                                        .gossip(kFanOut)
                                        .workers(workers)
                                        .build();
  const auto wall_begin = std::chrono::steady_clock::now();  // ampom-lint: nondet-ok(wall throughput is a reported quantity, never fed back into the run)
  balancer::ClusterSim world{scenario};

  std::uint64_t spawned = 0;
  const std::uint32_t nodes = spec.zones * spec.nodes_per_zone;
  for (net::NodeId node = 0; node < nodes; node += 2) {
    for (std::uint32_t j = 0; j < 2 * spec.procs_per_node; ++j) {
      world.spawn(scale_job(node, spawned++));
    }
  }

  balancer::LoadBalancer::Config cfg;
  cfg.assumed_freeze_seconds = 0.2;
  balancer::LoadBalancer balancer{world, cfg};
  balancer.start();
  world.run();
  const auto wall_end = std::chrono::steady_clock::now();  // ampom-lint: nondet-ok(wall throughput is a reported quantity, never fed back into the run)

  procs_out = spawned;
  WorkerResult result;
  result.workers = workers;
  result.events = world.simulator().events_processed();
  result.sim_sec = world.makespan().sec();
  result.wall_sec = std::chrono::duration<double>(wall_end - wall_begin).count();
  result.events_per_sec =
      result.wall_sec > 0.0 ? static_cast<double>(result.events) / result.wall_sec : 0.0;
  return result;
}

CaseResult run_case(const CaseSpec& spec) {
  CaseResult result;
  result.nodes = spec.zones * spec.nodes_per_zone;
  result.zones = spec.zones;
  for (const std::size_t workers : kWorkerCounts) {
    std::uint64_t procs = 0;
    const WorkerResult run = run_once(spec, workers, procs);
    result.procs = procs;
    // Bit-identity is the contract the whole engine hangs off — check it
    // right here so a broken build cannot produce a plausible-looking curve.
    if (!result.runs.empty() && (run.events != result.runs.front().events ||
                                 run.sim_sec != result.runs.front().sim_sec)) {
      std::cerr << "FATAL: workers=" << workers << " diverged from workers="
                << result.runs.front().workers << " on n" << result.nodes
                << " (events " << run.events << " vs " << result.runs.front().events
                << ", sim_sec " << run.sim_sec << " vs " << result.runs.front().sim_sec
                << ")\n";
      std::exit(1);
    }
    result.runs.push_back(run);
  }
  return result;
}

std::string fmt(double v) {
  std::ostringstream out;
  out.precision(6);
  out << v;
  return out.str();
}

std::string render_json(const std::vector<CaseResult>& results, unsigned host_cpus) {
  std::string out = "{\n  \"schema\": 1,\n  \"tool\": \"parallel_sweep\",\n";
  out += "  \"host_cpus\": " + std::to_string(host_cpus) + ",\n  \"cases\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    out += "    \"n" + std::to_string(r.nodes) + "\": {";
    out += "\"nodes\": " + std::to_string(r.nodes);
    out += ", \"zones\": " + std::to_string(r.zones);
    out += ", \"procs\": " + std::to_string(r.procs);
    out += ", \"runs\": {";
    for (std::size_t w = 0; w < r.runs.size(); ++w) {
      const WorkerResult& run = r.runs[w];
      out += "\"w" + std::to_string(run.workers) + "\": {";
      out += "\"workers\": " + std::to_string(run.workers);
      out += ", \"events\": " + std::to_string(run.events);
      out += ", \"sim_sec\": " + fmt(run.sim_sec);
      out += ", \"wall_sec\": " + fmt(run.wall_sec);
      out += ", \"events_per_sec\": " + fmt(run.events_per_sec);
      out += w + 1 < r.runs.size() ? "}, " : "}";
    }
    out += "}";
    out += i + 1 < results.size() ? "},\n" : "}\n";
  }
  out += "  }\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool full = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--full") {
      full = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0] << " [--quick|--full] [--json=FILE]\n";
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return 2;
    }
  }

  std::vector<CaseSpec> grid = {{16, 16, 10}};
  if (!quick) {
    grid.push_back({20, 100, 10});
  }
  if (full) {
    grid.push_back({100, 100, 10});
  }

  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::vector<CaseResult> results;
  for (const CaseSpec& spec : grid) {
    const CaseResult r = run_case(spec);
    std::cout << "n" << r.nodes << ": " << r.procs << " procs, " << r.runs.front().events
              << " events, sim " << fmt(r.runs.front().sim_sec) << " s\n";
    for (const WorkerResult& run : r.runs) {
      const double speedup = run.wall_sec > 0.0
                                 ? r.runs.front().wall_sec / run.wall_sec
                                 : 0.0;
      std::cout << "  workers=" << run.workers << ": wall " << fmt(run.wall_sec)
                << " s (" << fmt(run.events_per_sec / 1e6) << " Mev/s, "
                << fmt(speedup) << "x vs workers=1)\n";
    }
    results.push_back(r);
  }

  const std::string json = render_json(results, host_cpus);
  if (!json_path.empty()) {
    std::ofstream out{json_path, std::ios::binary};
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 2;
    }
    out << json;
  } else {
    std::cout << json;
  }
  return 0;
}
