// Scale sweep: how far does one machine carry the cluster world?
//
// Each case builds a zoned gossip cluster (fan-out 3), lands a job burst on
// half of every zone's nodes and lets the zone-sharded balancer spread it,
// then reports the cost of the whole run:
//
//   events                total simulator events (deterministic)
//   sim_sec               simulated makespan (deterministic)
//   msgs_per_node_period  InfoDaemon sends per node per gossip period
//                         (deterministic; the O(fan_out)-not-O(n) proof)
//   wall_sec              host wall time (informational, machine-dependent)
//   events_per_sec        events / wall_sec (informational)
//
// tools/perf_gate --scale-input consumes the --json output, normalizes it
// to the committed BENCH_scale.json and gates the deterministic fields plus
// the wall-time trajectory. Grids:
//
//   --quick    64 (8x8) and 256 (16x16) nodes         (CI smoke)
//   (default)  quick + 1024 (32x32) and 2000 (20x100)
//   --full     default + 10000 (100x100), 100k procs  (the 10k-node claim)

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "balancer/cluster_sim.hpp"
#include "balancer/load_balancer.hpp"
#include "driver/builder.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace ampom;

struct CaseSpec {
  std::uint32_t zones;
  std::uint32_t nodes_per_zone;
  std::uint32_t procs_per_node;  // spawned on the even nodes of each zone
};

struct CaseResult {
  std::uint32_t nodes;
  std::uint32_t zones;
  std::uint32_t fan_out;
  std::uint64_t procs;
  std::uint64_t events;
  double sim_sec;
  double msgs_per_node_period;
  double wall_sec;
  double events_per_sec;
};

constexpr std::uint32_t kFanOut = 3;

balancer::JobSpec scale_job(net::NodeId home, std::uint64_t index) {
  balancer::JobSpec job;
  job.home = home;
  job.label = "scale";
  job.start = sim::Time::from_ms(25 * (index % 8));
  // Small image, small hot set: migrations stay cheap so the sweep measures
  // the cluster fabric (gossip, balancing, event engine), not paging volume.
  job.make_workload = [index] {
    return std::make_unique<workload::HotColdStream>(
        2 * sim::kMiB, /*hot_pages=*/64, /*touches=*/4000 + 500 * (index % 5),
        /*cold_fraction=*/0.05, sim::Time::from_us(100));
  };
  return job;
}

CaseResult run_case(const CaseSpec& spec) {
  const driver::Scenario scenario = driver::ScenarioBuilder{}
                                        .scheme(driver::Scheme::Ampom)
                                        .topology(spec.zones, spec.nodes_per_zone)
                                        .gossip(kFanOut)
                                        .build();
  const auto wall_begin = std::chrono::steady_clock::now();  // ampom-lint: nondet-ok(wall throughput is a reported quantity, never fed back into the run)
  balancer::ClusterSim world{scenario};

  // The burst: procs_per_node jobs on every even node, none on odd ones —
  // a 2x imbalance inside every zone for the balancer to flatten.
  std::uint64_t spawned = 0;
  const std::uint32_t nodes = spec.zones * spec.nodes_per_zone;
  for (net::NodeId node = 0; node < nodes; node += 2) {
    for (std::uint32_t j = 0; j < 2 * spec.procs_per_node; ++j) {
      world.spawn(scale_job(node, spawned++));
    }
  }

  balancer::LoadBalancer::Config cfg;
  cfg.assumed_freeze_seconds = 0.2;
  balancer::LoadBalancer balancer{world, cfg};
  balancer.start();
  world.run();
  const auto wall_end = std::chrono::steady_clock::now();  // ampom-lint: nondet-ok(wall throughput is a reported quantity, never fed back into the run)

  std::uint64_t daemon_msgs = 0;
  for (net::NodeId id = 0; id < nodes; ++id) {
    // Pings this daemon sent plus acks it received ~= its total sends (every
    // received gossip ping is answered by one ack).
    daemon_msgs += world.infod(id).pings_sent() + world.infod(id).acks_received();
  }

  CaseResult result;
  result.nodes = nodes;
  result.zones = spec.zones;
  result.fan_out = kFanOut;
  result.procs = spawned;
  result.events = world.simulator().events_processed();
  result.sim_sec = world.makespan().sec();
  const double periods = result.sim_sec / world.infod_period().sec();
  result.msgs_per_node_period =
      periods > 0.0 ? static_cast<double>(daemon_msgs) / nodes / periods : 0.0;
  result.wall_sec = std::chrono::duration<double>(wall_end - wall_begin).count();
  result.events_per_sec =
      result.wall_sec > 0.0 ? static_cast<double>(result.events) / result.wall_sec : 0.0;
  return result;
}

std::string fmt(double v) {
  std::ostringstream out;
  out.precision(6);
  out << v;
  return out.str();
}

std::string render_json(const std::vector<CaseResult>& results) {
  std::string out = "{\n  \"schema\": 1,\n  \"tool\": \"scale_sweep\",\n  \"cases\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    out += "    \"n" + std::to_string(r.nodes) + "\": {";
    out += "\"nodes\": " + std::to_string(r.nodes);
    out += ", \"zones\": " + std::to_string(r.zones);
    out += ", \"fan_out\": " + std::to_string(r.fan_out);
    out += ", \"procs\": " + std::to_string(r.procs);
    out += ", \"events\": " + std::to_string(r.events);
    out += ", \"sim_sec\": " + fmt(r.sim_sec);
    out += ", \"msgs_per_node_period\": " + fmt(r.msgs_per_node_period);
    out += ", \"wall_sec\": " + fmt(r.wall_sec);
    out += ", \"events_per_sec\": " + fmt(r.events_per_sec);
    out += i + 1 < results.size() ? "},\n" : "}\n";
  }
  out += "  }\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool full = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--full") {
      full = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0] << " [--quick|--full] [--json=FILE]\n";
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return 2;
    }
  }

  std::vector<CaseSpec> grid = {{8, 8, 10}, {16, 16, 10}};
  if (!quick) {
    grid.push_back({32, 32, 10});
    grid.push_back({20, 100, 10});
  }
  if (full) {
    grid.push_back({100, 100, 10});
  }

  std::vector<CaseResult> results;
  for (const CaseSpec& spec : grid) {
    const CaseResult r = run_case(spec);
    std::cout << "n" << r.nodes << ": " << r.procs << " procs, " << r.events
              << " events, sim " << fmt(r.sim_sec) << " s, wall " << fmt(r.wall_sec)
              << " s (" << fmt(r.events_per_sec / 1e6) << " Mev/s), "
              << fmt(r.msgs_per_node_period) << " msgs/node/period\n";
    results.push_back(r);
  }

  const std::string json = render_json(results);
  if (!json_path.empty()) {
    std::ofstream out{json_path, std::ios::binary};
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 2;
    }
    out << json;
  } else {
    std::cout << json;
  }
  return 0;
}
