// Figure 7: number of page-fault requests in AMPoM vs NoPrefetch.
//
// Paper reference points (largest runs): AMPoM prevents 98 % (DGEMM),
// 99 % (STREAM), 85 % (RandomAccess) and 97 % (FFT) of the page-fault
// requests NoPrefetch sends.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};

  for (const auto kernel : bench::kAllKernels) {
    bench::SweepSpec spec{std::string("Fig. 7: page-fault requests - ") +
                              workload::hpcc_kernel_name(kernel),
                          {"size (MB)", "AMPoM", "NoPrefetch", "prevented"}};
    for (const std::uint64_t mib : bench::kernel_sizes(kernel, opts.quick)) {
      spec.add_case({bench::cell(kernel, mib, driver::Scheme::Ampom),
                     bench::cell(kernel, mib, driver::Scheme::NoPrefetch)},
                    [mib](std::span<const driver::RunMetrics> m) -> bench::SweepSpec::Row {
                      return {stats::Table::integer(mib),
                              stats::Table::integer(m[0].remote_fault_requests),
                              stats::Table::integer(m[1].remote_fault_requests),
                              stats::Table::percent(m[0].prevented_fault_fraction())};
                    });
    }
    runner.run(spec);
  }
  return 0;
}
