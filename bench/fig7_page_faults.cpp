// Figure 7: number of page-fault requests in AMPoM vs NoPrefetch.
//
// Paper reference points (largest runs): AMPoM prevents 98 % (DGEMM),
// 99 % (STREAM), 85 % (RandomAccess) and 97 % (FFT) of the page-fault
// requests NoPrefetch sends.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);

  for (const auto kernel : bench::kAllKernels) {
    stats::Table table{std::string("Fig. 7: page-fault requests - ") +
                           workload::hpcc_kernel_name(kernel),
                       {"size (MB)", "AMPoM", "NoPrefetch", "prevented"}};
    for (const std::uint64_t mib : bench::kernel_sizes(kernel, opts.quick)) {
      const auto am = bench::run_cell(kernel, mib, driver::Scheme::Ampom);
      const auto np = bench::run_cell(kernel, mib, driver::Scheme::NoPrefetch);
      table.add_row({stats::Table::integer(mib),
                     stats::Table::integer(am.remote_fault_requests),
                     stats::Table::integer(np.remote_fault_requests),
                     stats::Table::percent(am.prevented_fault_fraction())});
    }
    bench::emit(table, opts);
  }
  return 0;
}
