// Microbenchmarks of the simulation engine itself: event throughput, fabric
// message dispatch and executor reference consumption. These bound how much
// wall time the paper-scale experiments cost.

#include <benchmark/benchmark.h>

#include <memory>

#include "net/fabric.hpp"
#include "proc/executor.hpp"
#include "simcore/simulator.hpp"

namespace {

using namespace ampom;
using sim::Time;

void BM_ScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    const auto n = state.range(0);
    for (std::int64_t i = 0; i < n; ++i) {
      simulator.schedule_at(Time::from_us(i), [] {});
    }
    simulator.run();
    benchmark::DoNotOptimize(simulator.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_TimerCancellation(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    std::vector<sim::Simulator::EventId> ids;
    ids.reserve(10000);
    for (std::int64_t i = 0; i < 10000; ++i) {
      ids.push_back(simulator.schedule_at(Time::from_us(i), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) {
      simulator.cancel(ids[i]);
    }
    simulator.run();
    benchmark::DoNotOptimize(simulator.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_TimerCancellation);

void BM_FabricSend(benchmark::State& state) {
  sim::Simulator simulator;
  net::Fabric fabric{simulator, 2};
  fabric.set_handler(1, [](const net::Message&) {});
  std::uint64_t sent = 0;
  for (auto _ : state) {
    fabric.send(net::Message{0, 1, 4506, net::Background{}});
    if (++sent % 1024 == 0) {
      simulator.run();  // drain periodically so the heap stays small
    }
  }
  simulator.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(sent));
}
BENCHMARK(BM_FabricSend);

void BM_ExecutorLocalRefs(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<proc::Ref> refs(100000,
                                proc::Ref{300, Time::from_ns(500), proc::Ref::Kind::Memory});
    for (std::size_t i = 0; i < refs.size(); ++i) {
      refs[i].page = 300 + (i % 512);
    }
    sim::Simulator simulator;
    proc::Process process{1,
                          std::make_unique<proc::TraceStream>(std::move(refs), 4 * sim::kMiB),
                          0};
    process.aspace().populate_all_dirty();
    proc::Executor executor{simulator, process, proc::NodeCosts{}};
    state.ResumeTiming();
    executor.start();
    simulator.run();
    benchmark::DoNotOptimize(executor.stats().refs_consumed);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_ExecutorLocalRefs);

}  // namespace

BENCHMARK_MAIN();
