// Microbenchmarks of the simulation engine itself: event throughput, fabric
// message dispatch and executor reference consumption. These bound how much
// wall time the paper-scale experiments cost.
//
// On top of the ad-hoc benches this binary carries the engine's continuous
// perf profiles — schedule-heavy, cancel-heavy (reliable-paging silence-
// timer churn) and mixed — each run against BOTH the production indexed-heap
// Simulator and a verbatim copy of the lazy-delete engine it replaced, so
// every run measures the speedup on the machine it runs on. Each profile
// reports:
//   events_per_sec   engine operations (schedule + cancel + fire) per second
//   peak_queued      max entries physically queued (lazy-delete strands
//                    cancelled entries; the indexed heap must not)
//   allocs_per_op    heap allocations per engine op, via the global
//                    operator-new hook below (0 for SBO-sized callbacks)
//
// tools/perf_gate consumes the --benchmark_out=FILE JSON, normalizes it to
// BENCH_simcore.json and gates CI on the machine-independent fields.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <unordered_set>  // ampom-lint: ordered-safe(membership only; reference lazy-delete engine preserved verbatim)
#include <vector>

#include "net/fabric.hpp"
#include "proc/executor.hpp"
#include "simcore/simulator.hpp"

// ---------------------------------------------------------------------------
// Counting allocator hook: every global new/delete in this binary bumps a
// counter. Profiles snapshot it around their measured (post-warmup) phase,
// with no library calls in between, so the delta is exactly the engine's.
// ---------------------------------------------------------------------------

namespace bench_alloc {
std::atomic<std::uint64_t> g_allocations{0};
inline std::uint64_t count() { return g_allocations.load(std::memory_order_relaxed); }
}  // namespace bench_alloc

// noinline: once inlined, GCC pattern-matches the malloc/free bodies against
// the operator new/delete calls and raises -Wmismatched-new-delete.
[[gnu::noinline]] void* operator new(std::size_t size) {
  bench_alloc::g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) {
    return p;
  }
  throw std::bad_alloc{};
}
[[gnu::noinline]] void* operator new[](std::size_t size) { return ::operator new(size); }
[[gnu::noinline]] void operator delete(void* p) noexcept { std::free(p); }
[[gnu::noinline]] void operator delete(void* p, std::size_t) noexcept { std::free(p); }
[[gnu::noinline]] void operator delete[](void* p) noexcept { std::free(p); }
[[gnu::noinline]] void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace ampom;
using sim::Time;

// ---------------------------------------------------------------------------
// The retired engine, verbatim: std::priority_queue + lazy deletion through
// a live-set. Kept here (not in src/) purely as the perf baseline.
// ---------------------------------------------------------------------------

class LazyEngine {
 public:
  using Callback = std::function<void()>;
  struct EventId {
    std::uint64_t seq{0};
    [[nodiscard]] bool valid() const { return seq != 0; }
  };

  [[nodiscard]] Time now() const { return now_; }

  EventId schedule_at(Time at, Callback cb) {
    const std::uint64_t seq = next_seq_++;
    heap_.push(Item{at, seq, std::move(cb)});
    live_.insert(seq);
    return EventId{seq};
  }
  EventId schedule_after(Time delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  bool cancel(EventId id) { return id.valid() && live_.erase(id.seq) > 0; }

  std::uint64_t run() {
    std::uint64_t fired = 0;
    Item item;
    while (pop_next(item)) {
      now_ = item.at;
      ++fired;
      item.cb();
    }
    return fired;
  }

  [[nodiscard]] std::size_t queued_entries() const { return heap_.size(); }

 private:
  struct Item {
    Time at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    [[nodiscard]] bool operator()(const Item& a, const Item& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  bool pop_next(Item& out) {
    while (!heap_.empty()) {
      out = std::move(const_cast<Item&>(heap_.top()));
      heap_.pop();
      if (live_.erase(out.seq) > 0) {
        return true;
      }
    }
    return false;
  }

  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  std::unordered_set<std::uint64_t> live_;  // ampom-lint: ordered-safe(membership only; reference lazy-delete engine preserved verbatim)
  Time now_{Time::zero()};
  std::uint64_t next_seq_{1};
};

// ---------------------------------------------------------------------------
// Profile drivers, templated over the engine so both implementations run the
// byte-for-byte same workload.
// ---------------------------------------------------------------------------

struct Sink {
  std::uint64_t sum{0};
};

// Callbacks capture ~24 bytes (a sink pointer plus two ids), the shape of a
// real paging/timer closure: over std::function's inline buffer, comfortably
// inside InplaceFunction's.
template <class Engine>
std::uint64_t drive_schedule_heavy(Engine& eng, Sink& sink, int events) {
  for (int i = 0; i < events; ++i) {
    const auto id = static_cast<std::uint64_t>(i);
    eng.schedule_after(Time::from_ns(997 * (i % 4096) + 1),
                       [s = &sink, id, page = id * 7] { s->sum += id ^ page; });
  }
  return static_cast<std::uint64_t>(events) + eng.run();  // schedules + fires
}

// The reliable-paging hot pattern: every page arrival cancels and re-arms a
// silence timer whose timeout dwarfs the inter-page gap, so the lazy engine
// strands timeout/gap dead entries per request at steady state.
template <class Engine>
struct PagingChurn {
  Engine& eng;
  Sink& sink;
  int remaining{0};
  typename Engine::EventId timer{};
  std::size_t peak_queued{0};
  std::uint64_t ops{0};

  void run(int arrivals) {
    remaining = arrivals;
    eng.schedule_after(Time::from_ns(1001), [this] { arrive(); });
    eng.run();
  }

  void arrive() {
    ops += 1;  // this arrival fired
    if (timer.valid()) {
      eng.cancel(timer);
      ops += 1;
    }
    const auto rid = static_cast<std::uint64_t>(remaining);
    timer = eng.schedule_after(Time::from_us(1000),
                               [s = &sink, rid, page = rid * 3] { s->sum += rid + page; });
    ops += 1;
    if ((remaining & 255) == 0) {
      peak_queued = std::max(peak_queued, eng.queued_entries());
    }
    if (--remaining > 0) {
      eng.schedule_after(Time::from_ns(1001), [this] { arrive(); });
      ops += 1;
    }
  }
};

// Mixed: bursts of scheduling, half of each burst cancelled, the rest fired.
// `ids` is caller-owned scratch so its allocation stays out of the measured
// region.
template <class Engine>
std::uint64_t drive_mixed(Engine& eng, Sink& sink, int bursts, int burst_size,
                          std::size_t& peak_queued,
                          std::vector<typename Engine::EventId>& ids) {
  std::uint64_t ops = 0;
  ids.reserve(static_cast<std::size_t>(burst_size));
  for (int b = 0; b < bursts; ++b) {
    ids.clear();
    for (int i = 0; i < burst_size; ++i) {
      const auto id = static_cast<std::uint64_t>(i);
      ids.push_back(eng.schedule_after(Time::from_ns(977 * (i % 1024) + 1),
                                       [s = &sink, id, b64 = static_cast<std::uint64_t>(b)] {
                                         s->sum += id + b64;
                                       }));
      ++ops;
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) {
      eng.cancel(ids[i]);
      ++ops;
    }
    peak_queued = std::max(peak_queued, eng.queued_entries());
    ops += eng.run();
  }
  return ops;
}

// ---------------------------------------------------------------------------
// Benchmark wrappers: warm each engine to steady state (vector growth out of
// the way), then measure ops/sec and allocations over the hot phase.
// ---------------------------------------------------------------------------

void report(benchmark::State& state, std::uint64_t total_ops, std::uint64_t allocs,
            std::uint64_t alloc_ops, std::size_t peak_queued) {
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(total_ops), benchmark::Counter::kIsRate);
  state.counters["allocs_per_op"] =
      static_cast<double>(allocs) / static_cast<double>(alloc_ops > 0 ? alloc_ops : 1);
  state.counters["peak_queued"] = static_cast<double>(peak_queued);
}

template <class Engine>
void profile_schedule_heavy(benchmark::State& state) {
  constexpr int kEvents = 1 << 16;
  std::uint64_t total_ops = 0;
  std::uint64_t allocs = 0;
  std::uint64_t alloc_ops = 0;
  std::size_t peak = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Engine eng;
    Sink sink;
    // Warm with the full batch size so the engine's vectors reach their
    // steady-state capacity before allocations are counted.
    drive_schedule_heavy(eng, sink, kEvents);
    const std::uint64_t a0 = bench_alloc::count();
    state.ResumeTiming();
    const std::uint64_t ops = drive_schedule_heavy(eng, sink, kEvents);
    state.PauseTiming();
    allocs += bench_alloc::count() - a0;
    alloc_ops += ops;
    total_ops += ops;
    peak = std::max(peak, eng.queued_entries());
    benchmark::DoNotOptimize(sink.sum);
    state.ResumeTiming();
  }
  // schedule_heavy holds the whole batch queued at once by design.
  report(state, total_ops, allocs, alloc_ops, static_cast<std::size_t>(1 << 16));
}

template <class Engine>
void profile_cancel_heavy(benchmark::State& state) {
  constexpr int kWarmup = 4096;
  constexpr int kArrivals = 1 << 18;
  std::uint64_t total_ops = 0;
  std::uint64_t allocs = 0;
  std::uint64_t alloc_ops = 0;
  std::size_t peak = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Engine eng;
    Sink sink;
    PagingChurn<Engine> churn{eng, sink};
    churn.run(kWarmup);  // steady state: containers grown, dead entries flushed
    const std::uint64_t a0 = bench_alloc::count();
    const std::uint64_t ops0 = churn.ops;
    churn.peak_queued = 0;
    state.ResumeTiming();
    churn.run(kArrivals);
    state.PauseTiming();
    allocs += bench_alloc::count() - a0;
    alloc_ops += churn.ops - ops0;
    total_ops += churn.ops - ops0;
    peak = std::max(peak, churn.peak_queued);
    benchmark::DoNotOptimize(sink.sum);
    state.ResumeTiming();
  }
  report(state, total_ops, allocs, alloc_ops, peak);
}

template <class Engine>
void profile_mixed(benchmark::State& state) {
  constexpr int kBursts = 64;
  constexpr int kBurstSize = 4096;
  std::uint64_t total_ops = 0;
  std::uint64_t allocs = 0;
  std::uint64_t alloc_ops = 0;
  std::size_t peak = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Engine eng;
    Sink sink;
    std::vector<typename Engine::EventId> ids;
    std::size_t warm_peak = 0;
    drive_mixed(eng, sink, 2, kBurstSize, warm_peak, ids);
    const std::uint64_t a0 = bench_alloc::count();
    state.ResumeTiming();
    const std::uint64_t ops = drive_mixed(eng, sink, kBursts, kBurstSize, peak, ids);
    state.PauseTiming();
    allocs += bench_alloc::count() - a0;
    alloc_ops += ops;
    total_ops += ops;
    benchmark::DoNotOptimize(sink.sum);
    state.ResumeTiming();
  }
  report(state, total_ops, allocs, alloc_ops, peak);
}

void BM_ScheduleHeavy_Indexed(benchmark::State& state) {
  profile_schedule_heavy<sim::Simulator>(state);
}
void BM_ScheduleHeavy_Lazy(benchmark::State& state) { profile_schedule_heavy<LazyEngine>(state); }
void BM_CancelHeavy_Indexed(benchmark::State& state) { profile_cancel_heavy<sim::Simulator>(state); }
void BM_CancelHeavy_Lazy(benchmark::State& state) { profile_cancel_heavy<LazyEngine>(state); }
void BM_Mixed_Indexed(benchmark::State& state) { profile_mixed<sim::Simulator>(state); }
void BM_Mixed_Lazy(benchmark::State& state) { profile_mixed<LazyEngine>(state); }

BENCHMARK(BM_ScheduleHeavy_Indexed);
BENCHMARK(BM_ScheduleHeavy_Lazy);
BENCHMARK(BM_CancelHeavy_Indexed);
BENCHMARK(BM_CancelHeavy_Lazy);
BENCHMARK(BM_Mixed_Indexed);
BENCHMARK(BM_Mixed_Lazy);

// ---------------------------------------------------------------------------
// The original ad-hoc microbenches.
// ---------------------------------------------------------------------------

void BM_ScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    const auto n = state.range(0);
    for (std::int64_t i = 0; i < n; ++i) {
      simulator.schedule_at(Time::from_us(i), [] {});
    }
    simulator.run();
    benchmark::DoNotOptimize(simulator.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_TimerCancellation(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    std::vector<sim::Simulator::EventId> ids;
    ids.reserve(10000);
    for (std::int64_t i = 0; i < 10000; ++i) {
      ids.push_back(simulator.schedule_at(Time::from_us(i), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) {
      simulator.cancel(ids[i]);
    }
    simulator.run();
    benchmark::DoNotOptimize(simulator.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_TimerCancellation);

void BM_FabricSend(benchmark::State& state) {
  sim::Simulator simulator;
  net::Fabric fabric{simulator, 2};
  fabric.set_handler(1, [](const net::Message&) {});
  std::uint64_t sent = 0;
  for (auto _ : state) {
    fabric.send(net::Message{0, 1, 4506, net::Background{}});
    if (++sent % 1024 == 0) {
      simulator.run();  // drain periodically so the heap stays small
    }
  }
  simulator.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(sent));
}
BENCHMARK(BM_FabricSend);

void BM_ExecutorLocalRefs(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<proc::Ref> refs(100000,
                                proc::Ref{300, Time::from_ns(500), proc::Ref::Kind::Memory});
    for (std::size_t i = 0; i < refs.size(); ++i) {
      refs[i].page = 300 + (i % 512);
    }
    sim::Simulator simulator;
    proc::Process process{1,
                          std::make_unique<proc::TraceStream>(std::move(refs), 4 * sim::kMiB),
                          0};
    process.aspace().populate_all_dirty();
    proc::Executor executor{simulator, process, proc::NodeCosts{}};
    state.ResumeTiming();
    executor.start();
    simulator.run();
    benchmark::DoNotOptimize(executor.stats().refs_consumed);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_ExecutorLocalRefs);

}  // namespace

BENCHMARK_MAIN();
