// System-level study of the paper's §7 claim: "new scheduling policies can
// make use of AMPoM ... to perform more aggressive migrations since the
// performance penalty of suboptimal decisions has been dramatically
// decreased."
//
// A burst of mixed jobs lands on two of eight nodes. The same greedy
// balancer runs under each migration mechanism, with its cost gate set to
// that mechanism's typical freeze (openMosix: seconds -> conservative;
// AMPoM / NoPrefetch: sub-second -> aggressive). Reported: makespan, mean
// job time, migrations performed, and total frozen time.
//
// ClusterSim worlds are not driver::Scenarios, so each (mechanism,
// balancing) cell runs as a SweepSpec task: a self-contained row producer
// that still executes on the --jobs pool (each world is hermetic).

#include <memory>

#include "balancer/cluster_sim.hpp"
#include "balancer/load_balancer.hpp"
#include "bench/common.hpp"
#include "driver/builder.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};
  const std::uint64_t touches = opts.quick ? 40000 : 120000;
  const int jobs_per_hot_node = opts.quick ? 3 : 5;

  bench::SweepSpec spec{"Load balancing under each migration mechanism (8 nodes, "
                        "jobs arriving on 2)",
                        {"mechanism", "balancing", "makespan (s)", "mean job (s)", "migrations",
                         "total frozen (s)"}};

  for (const auto scheme :
       {driver::Scheme::OpenMosix, driver::Scheme::NoPrefetch, driver::Scheme::Ampom}) {
    for (const bool balance : {false, true}) {
      spec.add_task([scheme, balance, touches, jobs_per_hot_node]() -> bench::SweepSpec::Row {
        // Single zone, no gossip: the exact pre-zoning all-pairs mesh, so the
        // mechanism comparison is undisturbed by dissemination choices.
        const driver::Scenario scenario =
            driver::ScenarioBuilder{}.scheme(scheme).topology(1, 8).build();
        balancer::ClusterSim world{scenario};
        for (int i = 0; i < jobs_per_hot_node; ++i) {
          for (const net::NodeId hot : {net::NodeId{0}, net::NodeId{1}}) {
            balancer::JobSpec job;
            job.home = hot;
            job.label = "mixed";
            job.start = sim::Time::from_ms(50 * i);
            job.make_workload = [touches, i] {
              return std::make_unique<workload::HotColdStream>(
                  16 * sim::kMiB, /*hot_pages=*/512,
                  touches + 10000u * static_cast<std::uint64_t>(i),
                  /*cold_fraction=*/0.05, sim::Time::from_us(80));
            };
            world.spawn(std::move(job));
          }
        }
        std::unique_ptr<balancer::LoadBalancer> lb;
        if (balance) {
          balancer::LoadBalancer::Config cfg;
          // The cost gate encodes the mechanism's freeze price.
          cfg.assumed_freeze_seconds = scheme == driver::Scheme::OpenMosix ? 3.0 : 0.2;
          lb = std::make_unique<balancer::LoadBalancer>(world, cfg);
          lb->start();
        }
        world.run();

        double mean = 0.0;
        std::uint64_t migrations = 0;
        double frozen = 0.0;
        for (const auto& host : world.hosts()) {
          mean += (host->finished_at() - sim::Time::zero()).sec();
          migrations += host->migrations();
          frozen += host->freeze_total().sec();
        }
        mean /= static_cast<double>(world.hosts().size());

        return {driver::scheme_name(scheme), balance ? "on" : "off",
                stats::Table::num(world.makespan().sec(), 2), stats::Table::num(mean, 2),
                stats::Table::integer(migrations), stats::Table::num(frozen, 2)};
      });
    }
  }
  runner.run(spec);
  return 0;
}
