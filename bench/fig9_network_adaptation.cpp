// Figure 9: adaptation to network performance. The link between the home
// and destination nodes is shaped to a broadband profile (6 Mb/s, 2 ms —
// the paper's tc/iptables emulation) and the execution-time increase of
// AMPoM and NoPrefetch relative to openMosix on the same network is
// reported for DGEMM (115 MB) and RandomAccess (129 MB).
//
// Paper shape: AMPoM's overhead stays modest for DGEMM (clear spatial
// locality) even at 6 Mb/s, is more sensitive for RandomAccess, and always
// beats NoPrefetch.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};

  struct Case {
    workload::HpccKernel kernel;
    std::uint64_t mib;
  };
  const Case cases[] = {{workload::HpccKernel::Dgemm, opts.quick ? 65u : 115u},
                        {workload::HpccKernel::RandomAccess, opts.quick ? 65u : 129u}};

  bench::SweepSpec spec{"Fig. 9: % increase in execution time vs openMosix (same network)",
                        {"kernel", "network", "AMPoM", "NoPrefetch"}};
  for (const Case& c : cases) {
    for (const bool broadband : {false, true}) {
      auto shaped_cell = [c, broadband](driver::Scheme scheme) -> bench::SweepSpec::ScenarioFn {
        return [c, broadband, scheme] {
          driver::Scenario s = bench::make_scenario(c.kernel, c.mib, scheme);
          if (broadband) {
            s.shape_migrant_link = true;
            s.shaped_link = driver::broadband_link();
          }
          return s;
        };
      };
      spec.add_case({shaped_cell(driver::Scheme::Ampom), shaped_cell(driver::Scheme::OpenMosix),
                     shaped_cell(driver::Scheme::NoPrefetch)},
                    [c, broadband](std::span<const driver::RunMetrics> m)
                        -> bench::SweepSpec::Row {
                      const double om = m[1].total_time.sec();
                      return {workload::hpcc_kernel_name(c.kernel),
                              broadband ? "6Mb/s" : "100Mb/s",
                              stats::Table::percent(m[0].total_time.sec() / om - 1.0),
                              stats::Table::percent(m[2].total_time.sec() / om - 1.0)};
                    });
    }
  }
  runner.run(spec);
  return 0;
}
