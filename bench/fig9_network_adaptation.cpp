// Figure 9: adaptation to network performance. The link between the home
// and destination nodes is shaped to a broadband profile (6 Mb/s, 2 ms —
// the paper's tc/iptables emulation) and the execution-time increase of
// AMPoM and NoPrefetch relative to openMosix on the same network is
// reported for DGEMM (115 MB) and RandomAccess (129 MB).
//
// Paper shape: AMPoM's overhead stays modest for DGEMM (clear spatial
// locality) even at 6 Mb/s, is more sensitive for RandomAccess, and always
// beats NoPrefetch.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);

  struct Case {
    workload::HpccKernel kernel;
    std::uint64_t mib;
  };
  const Case cases[] = {{workload::HpccKernel::Dgemm, opts.quick ? 65u : 115u},
                        {workload::HpccKernel::RandomAccess, opts.quick ? 65u : 129u}};

  stats::Table table{"Fig. 9: % increase in execution time vs openMosix (same network)",
                     {"kernel", "network", "AMPoM", "NoPrefetch"}};
  for (const Case& c : cases) {
    for (const bool broadband : {false, true}) {
      double total[3] = {};
      for (const auto scheme : bench::kAllSchemes) {
        driver::Scenario s = bench::make_scenario(c.kernel, c.mib, scheme);
        if (broadband) {
          s.shape_migrant_link = true;
          s.shaped_link = driver::broadband_link();
        }
        total[static_cast<int>(scheme)] = driver::run_experiment(s).total_time.sec();
      }
      const double om = total[static_cast<int>(driver::Scheme::OpenMosix)];
      table.add_row({workload::hpcc_kernel_name(c.kernel), broadband ? "6Mb/s" : "100Mb/s",
                     stats::Table::percent(
                         total[static_cast<int>(driver::Scheme::Ampom)] / om - 1.0),
                     stats::Table::percent(
                         total[static_cast<int>(driver::Scheme::NoPrefetch)] / om - 1.0)});
    }
  }
  bench::emit(table, opts);
  return 0;
}
