// Figure 10: process migration with smaller working sets. DGEMM allocates
// 575 MB but works on 115/230/345/460/575 MB of matrices; openMosix always
// transfers the full allocation during the freeze while AMPoM fetches only
// the working set.
//
// Paper shape: openMosix's total time is flat; AMPoM's grows with the
// working set and is substantially lower for small working sets.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);

  const std::uint64_t alloc_mib = opts.quick ? 129 : 575;
  std::vector<std::uint64_t> working_sets;
  if (opts.quick) {
    working_sets = {33, 65, 129};
  } else {
    working_sets = {115, 230, 345, 460, 575};
  }

  stats::Table table{"Fig. 10: total execution time (s) with smaller working sets "
                     "(DGEMM allocating " + std::to_string(alloc_mib) + " MB)",
                     {"working set (MB)", "openMosix", "AMPoM", "AMPoM pages moved",
                      "openMosix pages moved"}};
  for (const std::uint64_t ws : working_sets) {
    driver::RunMetrics m[2];
    int i = 0;
    for (const auto scheme : {driver::Scheme::OpenMosix, driver::Scheme::Ampom}) {
      driver::Scenario s;
      s.scheme = scheme;
      s.memory_mib = alloc_mib;
      s.workload_label = "DGEMM-ws";
      s.make_workload = [alloc_mib, ws] {
        return workload::make_small_ws_dgemm(alloc_mib, ws);
      };
      m[i++] = driver::run_experiment(s);
    }
    table.add_row({stats::Table::integer(ws), stats::Table::num(m[0].total_time.sec(), 2),
                   stats::Table::num(m[1].total_time.sec(), 2),
                   stats::Table::integer(m[1].pages_arrived + m[1].pages_migrated),
                   stats::Table::integer(m[0].pages_migrated)});
  }
  bench::emit(table, opts);
  return 0;
}
