// Figure 10: process migration with smaller working sets. DGEMM allocates
// 575 MB but works on 115/230/345/460/575 MB of matrices; openMosix always
// transfers the full allocation during the freeze while AMPoM fetches only
// the working set.
//
// Paper shape: openMosix's total time is flat; AMPoM's grows with the
// working set and is substantially lower for small working sets.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};

  const std::uint64_t alloc_mib = opts.quick ? 129 : 575;
  std::vector<std::uint64_t> working_sets;
  if (opts.quick) {
    working_sets = {33, 65, 129};
  } else {
    working_sets = {115, 230, 345, 460, 575};
  }

  auto ws_cell = [alloc_mib](driver::Scheme scheme,
                             std::uint64_t ws) -> bench::SweepSpec::ScenarioFn {
    return [alloc_mib, scheme, ws] {
      driver::Scenario s;
      s.scheme = scheme;
      s.memory_mib = alloc_mib;
      s.workload_label = "DGEMM-ws";
      s.make_workload = [alloc_mib, ws] {
        return workload::make_small_ws_dgemm(alloc_mib, ws);
      };
      return s;
    };
  };

  bench::SweepSpec spec{"Fig. 10: total execution time (s) with smaller working sets "
                        "(DGEMM allocating " + std::to_string(alloc_mib) + " MB)",
                        {"working set (MB)", "openMosix", "AMPoM", "AMPoM pages moved",
                         "openMosix pages moved"}};
  for (const std::uint64_t ws : working_sets) {
    spec.add_case({ws_cell(driver::Scheme::OpenMosix, ws), ws_cell(driver::Scheme::Ampom, ws)},
                  [ws](std::span<const driver::RunMetrics> m) -> bench::SweepSpec::Row {
                    return {stats::Table::integer(ws),
                            stats::Table::num(m[0].total_time.sec(), 2),
                            stats::Table::num(m[1].total_time.sec(), 2),
                            stats::Table::integer(m[1].pages_arrived + m[1].pages_migrated),
                            stats::Table::integer(m[0].pages_migrated)};
                  });
  }
  runner.run(spec);
  return 0;
}
