// Ablation: batched vs per-page prefetch requests. A negative result worth
// keeping: because all of a fault's requests are issued together either
// way, the reply stream is identical and the completion timeline does not
// move — batching "only" collapses the request messages (reverse-path
// traffic and deputy per-request handling), which sit below the page-stream
// bottleneck at both 100 Mb/s and 6 Mb/s. The pipelining win the paper's
// Fig. 3 illustrates comes from prefetching itself (see ablation_zone_cap's
// min_zone sweep), not from message aggregation.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};
  const std::uint64_t mib = opts.quick ? 33 : 129;

  bench::SweepSpec spec{"Ablation: request batching (paper: batched)",
                        {"kernel", "network", "batching", "requests sent", "req wire KiB",
                         "total (s)"}};
  for (const auto kernel : {workload::HpccKernel::Stream, workload::HpccKernel::Dgemm}) {
    for (const bool broadband : {false, true}) {
      for (const bool batching : {true, false}) {
        spec.add_case(
            [kernel, mib, broadband, batching] {
              driver::Scenario s = bench::make_scenario(kernel, mib, driver::Scheme::Ampom);
              s.ampom.batch_requests = batching;
              if (broadband) {
                s.shape_migrant_link = true;
                s.shaped_link = driver::broadband_link();
              }
              return s;
            },
            [kernel, broadband, batching](const driver::RunMetrics& m)
                -> bench::SweepSpec::Row {
              const std::uint64_t requests = m.remote_fault_requests + m.prefetch_requests;
              const std::uint64_t pages = m.prefetch_pages_issued + m.remote_fault_requests;
              const sim::Bytes req_bytes = requests * proc::WireCosts{}.request_base +
                                           pages * proc::WireCosts{}.request_per_page;
              return {workload::hpcc_kernel_name(kernel), broadband ? "6Mb/s" : "100Mb/s",
                      batching ? "on" : "off", stats::Table::integer(requests),
                      stats::Table::integer(req_bytes / 1024),
                      stats::Table::num(m.total_time.sec(), 2)};
            });
      }
    }
  }
  runner.run(spec);
  return 0;
}
