// Ablation: the lookback-window length l. The paper fixes l = 20 and calls
// the choice "admittedly arbitrary" (§4); this sweep shows the sensitivity:
// very short windows misestimate the paging rate and miss streams, very
// long windows keep stale streams alive and slow the per-fault analysis.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};
  const std::uint64_t mib = opts.quick ? 33 : 129;

  bench::SweepSpec spec{"Ablation: lookback window length l (paper: 20)",
                        {"kernel", "l", "fault reqs", "prevented", "zone/fault", "total (s)",
                         "analysis"}};
  for (const auto kernel : {workload::HpccKernel::Stream, workload::HpccKernel::RandomAccess}) {
    for (const std::size_t l : {4u, 8u, 20u, 40u, 64u}) {
      spec.add_case(
          [kernel, mib, l] {
            driver::Scenario s = bench::make_scenario(kernel, mib, driver::Scheme::Ampom);
            s.ampom.lookback_length = l;
            return s;
          },
          [kernel, l](const driver::RunMetrics& m) -> bench::SweepSpec::Row {
            return {workload::hpcc_kernel_name(kernel), stats::Table::integer(l),
                    stats::Table::integer(m.remote_fault_requests),
                    stats::Table::percent(m.prevented_fault_fraction()),
                    stats::Table::num(m.prefetched_per_fault(), 1),
                    stats::Table::num(m.total_time.sec(), 2), m.ampom_analysis_time.str()};
          });
    }
  }
  runner.run(spec);
  return 0;
}
