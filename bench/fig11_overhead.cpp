// Figure 11: overhead of the AMPoM dependent-zone analysis, expressed as a
// percentage of total execution time.
//
// Paper shape: below 0.6 % in all cases, below 0.25 % in nearly all.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};

  bench::SweepSpec spec{"Fig. 11: AMPoM analysis overhead (% of execution time)",
                        {"kernel", "size (MB)", "overhead", "analysis time", "faults analyzed"}};
  for (const auto kernel : bench::kAllKernels) {
    for (const std::uint64_t mib : bench::kernel_sizes(kernel, opts.quick)) {
      spec.add_case(bench::cell(kernel, mib, driver::Scheme::Ampom),
                    [kernel, mib](const driver::RunMetrics& m) -> bench::SweepSpec::Row {
                      return {workload::hpcc_kernel_name(kernel), stats::Table::integer(mib),
                              stats::Table::percent(m.analysis_overhead_fraction(), 3),
                              m.ampom_analysis_time.str(),
                              stats::Table::integer(m.ampom_faults_seen)};
                    });
    }
  }
  runner.run(spec);
  return 0;
}
