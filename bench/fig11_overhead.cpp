// Figure 11: overhead of the AMPoM dependent-zone analysis, expressed as a
// percentage of total execution time.
//
// Paper shape: below 0.6 % in all cases, below 0.25 % in nearly all.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);

  stats::Table table{"Fig. 11: AMPoM analysis overhead (% of execution time)",
                     {"kernel", "size (MB)", "overhead", "analysis time", "faults analyzed"}};
  for (const auto kernel : bench::kAllKernels) {
    for (const std::uint64_t mib : bench::kernel_sizes(kernel, opts.quick)) {
      const auto m = bench::run_cell(kernel, mib, driver::Scheme::Ampom);
      table.add_row({workload::hpcc_kernel_name(kernel), stats::Table::integer(mib),
                     stats::Table::percent(m.analysis_overhead_fraction(), 3),
                     m.ampom_analysis_time.str(),
                     stats::Table::integer(m.ampom_faults_seen)});
    }
  }
  bench::emit(table, opts);
  return 0;
}
