#pragma once
// Shared harness for the per-figure benchmark binaries.
//
// Every binary accepts:
//   --quick        run a reduced sweep (small sizes; for CI smoke runs)
//   --csv=FILE     additionally dump the table as CSV
// and prints one aligned table per paper figure, with the paper's reported
// values quoted in the header comment of each binary for comparison.

#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "driver/builder.hpp"
#include "driver/experiment.hpp"
#include "stats/table.hpp"
#include "workload/hpcc.hpp"

namespace ampom::bench {

struct Options {
  bool quick{false};
  std::optional<std::string> csv_path;
};

inline Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opts.quick = true;
    } else if (arg.rfind("--csv=", 0) == 0) {
      opts.csv_path = arg.substr(6);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0] << " [--quick] [--csv=FILE]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      std::exit(2);
    }
  }
  return opts;
}

inline void emit(const stats::Table& table, const Options& opts) {
  table.print(std::cout);
  if (opts.csv_path) {
    std::ofstream out{*opts.csv_path, std::ios::app};
    table.write_csv(out);
  }
}

// The paper's sweep for one kernel (Table 1 sizes), reduced under --quick.
inline std::vector<std::uint64_t> kernel_sizes(workload::HpccKernel kernel, bool quick) {
  std::vector<std::uint64_t> sizes;
  auto collect = [&](const auto& cases) {
    for (const auto& c : cases) {
      sizes.push_back(c.memory_mib);
    }
  };
  switch (kernel) {
    case workload::HpccKernel::Dgemm:
      collect(workload::kDgemmCases);
      break;
    case workload::HpccKernel::Stream:
      collect(workload::kStreamCases);
      break;
    case workload::HpccKernel::RandomAccess:
      collect(workload::kRandomAccessCases);
      break;
    case workload::HpccKernel::Fft:
      collect(workload::kFftCases);
      break;
  }
  if (quick) {
    sizes.resize(2);  // the two smallest sizes only
  }
  return sizes;
}

inline constexpr workload::HpccKernel kAllKernels[] = {
    workload::HpccKernel::Dgemm, workload::HpccKernel::Stream,
    workload::HpccKernel::RandomAccess, workload::HpccKernel::Fft};

inline constexpr driver::Scheme kAllSchemes[] = {
    driver::Scheme::OpenMosix, driver::Scheme::NoPrefetch, driver::Scheme::Ampom};

// A ready-to-extend builder for one paper cell; callers chain further knobs
// (reliability, faults, tracing) before build().
inline driver::ScenarioBuilder cell_builder(workload::HpccKernel kernel,
                                            std::uint64_t memory_mib, driver::Scheme scheme) {
  return driver::ScenarioBuilder{}.scheme(scheme).hpcc_workload(kernel, memory_mib);
}

inline driver::Scenario make_scenario(workload::HpccKernel kernel, std::uint64_t memory_mib,
                                      driver::Scheme scheme) {
  return cell_builder(kernel, memory_mib, scheme).build();
}

inline driver::RunMetrics run_cell(workload::HpccKernel kernel, std::uint64_t memory_mib,
                                   driver::Scheme scheme) {
  return driver::run_experiment(make_scenario(kernel, memory_mib, scheme));
}

}  // namespace ampom::bench
