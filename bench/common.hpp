#pragma once
// Shared harness for the per-figure benchmark binaries.
//
// Every binary accepts:
//   --quick        run a reduced sweep (small sizes; for CI smoke runs)
//   --jobs=N       run the sweep's cases on N worker threads (default 1;
//                  results are bit-identical to the serial run)
//   --workers=N    intra-run parallelism for cluster-world benches: run each
//                  simulation on N threads over zone-partitioned event
//                  queues (default 0 = legacy serial engine; any N >= 1 is
//                  bit-identical to N=1, see DESIGN.md §15)
//   --csv=FILE     additionally dump every table as CSV
// and prints one aligned table per paper figure, with the paper's reported
// values quoted in the header comment of each binary for comparison.
//
// A bench declares its sweep instead of hand-rolling the loop: a SweepSpec
// is a table schema plus a list of cases, where each case contributes one
// or more scenario factories and one row computed from their finished
// metrics. SweepRunner executes every scenario of every case on a
// driver::SweepExecutor pool (--jobs wide), then assembles, prints and
// CSV-appends the rows in declaration order — the table is identical no
// matter how many workers ran the cases. The runner owns the binary's one
// CSV stream for its whole lifetime (truncated at open), so concurrent
// cases can never interleave table fragments in the file.
//
//   bench::SweepRunner runner{opts};
//   bench::SweepSpec spec{"Fig. N: ...", {"size", "AMPoM", "openMosix"}};
//   spec.add_case({bench::cell(k, mib, Scheme::Ampom),
//                  bench::cell(k, mib, Scheme::OpenMosix)},
//                 [mib](std::span<const driver::RunMetrics> m) { ...row... });
//   runner.run(spec);

#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "driver/builder.hpp"
#include "driver/experiment.hpp"
#include "driver/runner.hpp"
#include "driver/sweep_executor.hpp"
#include "stats/table.hpp"
#include "workload/hpcc.hpp"

namespace ampom::bench {

struct Options {
  bool quick{false};
  // Inter-run (--jobs=N, sweep pool width) and intra-run (--workers=N,
  // simulator threads for cluster worlds) parallelism in one policy block —
  // every bench binary takes both, replacing the per-binary jobs flags.
  driver::ExecPolicy exec{};
  std::optional<std::string> csv_path;
};

inline Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opts.quick = true;
    } else if (opts.exec.parse_flag(arg)) {
      // --jobs=N / --workers=N handled by the policy
    } else if (arg.rfind("--csv=", 0) == 0) {
      opts.csv_path = arg.substr(6);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--quick] [--jobs=N] [--workers=N] [--csv=FILE]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      std::exit(2);
    }
  }
  return opts;
}

// One sweep: a table schema plus cases. Scenario cases run on the pool and
// format a row from their metrics; task cases are free-form row producers
// for studies that do not go through run_experiment (they run on the pool
// too, but nothing is guaranteed about their determinism — that is up to
// the task).
class SweepSpec {
 public:
  using ScenarioFn = driver::SweepExecutor::ScenarioFactory;
  using Row = std::vector<std::string>;
  using RowFn = std::function<Row(std::span<const driver::RunMetrics>)>;
  using RowsFn = std::function<std::vector<Row>(std::span<const driver::RunMetrics>)>;
  using TaskFn = std::function<Row()>;

  SweepSpec(std::string title, std::vector<std::string> columns)
      : title_{std::move(title)}, columns_{std::move(columns)} {}

  // N runs, several rows (e.g. one row per scheme, normalized against the
  // group's baseline run); the span preserves the factories' order.
  SweepSpec& add_case_rows(std::vector<ScenarioFn> scenarios, RowsFn rows) {
    cases_.push_back(Case{std::move(scenarios), std::move(rows), {}});
    return *this;
  }

  // One row from N runs.
  SweepSpec& add_case(std::vector<ScenarioFn> scenarios, RowFn row) {
    return add_case_rows(std::move(scenarios),
                         [row = std::move(row)](std::span<const driver::RunMetrics> m) {
                           return std::vector<Row>{row(m)};
                         });
  }

  // The common one-run-one-row case.
  SweepSpec& add_case(ScenarioFn scenario,
                      std::function<Row(const driver::RunMetrics&)> row) {
    std::vector<ScenarioFn> scenarios;
    scenarios.push_back(std::move(scenario));
    return add_case(std::move(scenarios),
                    [row = std::move(row)](std::span<const driver::RunMetrics> m) {
                      return row(m.front());
                    });
  }

  SweepSpec& add_task(TaskFn task) {
    cases_.push_back(Case{{}, {}, std::move(task)});
    return *this;
  }

 private:
  friend class SweepRunner;
  struct Case {
    std::vector<ScenarioFn> scenarios;
    RowsFn rows;
    TaskFn task;  // set iff scenarios is empty
  };
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<Case> cases_;
};

// Executes SweepSpecs and owns all of the binary's table output: stdout and
// the optional CSV file, written only by the caller's thread, in case order.
class SweepRunner {
 public:
  explicit SweepRunner(Options opts) : opts_{std::move(opts)} {
    if (opts_.csv_path) {
      csv_.emplace(*opts_.csv_path);  // truncate once; one stream per binary
      if (!*csv_) {
        std::cerr << "cannot open " << *opts_.csv_path << " for writing\n";
        std::exit(2);
      }
    }
  }

  [[nodiscard]] const Options& options() const { return opts_; }

  // Runs every scenario and task of the spec at --jobs, emits the table,
  // and returns each case's metrics (empty for task cases) for follow-up
  // aggregation (counter rollups, cross-table summaries). Any failed case
  // rethrows its error (first by declaration order) after the pool drains.
  std::vector<std::vector<driver::RunMetrics>> run(const SweepSpec& spec) {
    struct Unit {
      std::size_t case_index;
      std::size_t slot;  // index into that case's scenarios, or 0 for a task
    };
    std::vector<Unit> units;
    std::vector<std::vector<driver::RunMetrics>> metrics(spec.cases_.size());
    std::vector<std::vector<std::string>> task_rows(spec.cases_.size());
    for (std::size_t c = 0; c < spec.cases_.size(); ++c) {
      const SweepSpec::Case& one = spec.cases_[c];
      metrics[c].resize(one.scenarios.size());
      for (std::size_t s = 0; s < one.scenarios.size(); ++s) {
        units.push_back(Unit{c, s});
      }
      if (one.scenarios.empty()) {
        units.push_back(Unit{c, 0});
      }
    }

    std::vector<std::exception_ptr> errors(units.size());
    driver::SweepExecutor::parallel_for(opts_.exec.jobs, units.size(), [&](std::size_t u) {
      const Unit& unit = units[u];
      const SweepSpec::Case& one = spec.cases_[unit.case_index];
      try {
        if (one.scenarios.empty()) {
          task_rows[unit.case_index] = one.task();
        } else {
          driver::Runner runner{driver::Runner::Options{std::nullopt, /*capture_log=*/true}};
          metrics[unit.case_index][unit.slot] = runner.run(one.scenarios[unit.slot]());
        }
      } catch (...) {
        errors[u] = std::current_exception();
      }
    });
    for (const std::exception_ptr& error : errors) {
      if (error) {
        std::rethrow_exception(error);
      }
    }

    stats::Table table{spec.title_, spec.columns_};
    for (std::size_t c = 0; c < spec.cases_.size(); ++c) {
      const SweepSpec::Case& one = spec.cases_[c];
      if (one.scenarios.empty()) {
        table.add_row(task_rows[c]);
      } else {
        for (auto& row : one.rows(std::span<const driver::RunMetrics>{metrics[c]})) {
          table.add_row(std::move(row));
        }
      }
    }
    emit(table);
    return metrics;
  }

  // Hand-assembled tables (sweep summaries) go through the same writer.
  void emit(const stats::Table& table) {
    table.print(std::cout);
    if (csv_) {
      table.write_csv(*csv_);
    }
  }

 private:
  Options opts_;
  std::optional<std::ofstream> csv_;
};

// The paper's sweep for one kernel (Table 1 sizes), reduced under --quick.
inline std::vector<std::uint64_t> kernel_sizes(workload::HpccKernel kernel, bool quick) {
  std::vector<std::uint64_t> sizes;
  auto collect = [&](const auto& cases) {
    for (const auto& c : cases) {
      sizes.push_back(c.memory_mib);
    }
  };
  switch (kernel) {
    case workload::HpccKernel::Dgemm:
      collect(workload::kDgemmCases);
      break;
    case workload::HpccKernel::Stream:
      collect(workload::kStreamCases);
      break;
    case workload::HpccKernel::RandomAccess:
      collect(workload::kRandomAccessCases);
      break;
    case workload::HpccKernel::Fft:
      collect(workload::kFftCases);
      break;
  }
  if (quick) {
    sizes.resize(2);  // the two smallest sizes only
  }
  return sizes;
}

inline constexpr workload::HpccKernel kAllKernels[] = {
    workload::HpccKernel::Dgemm, workload::HpccKernel::Stream,
    workload::HpccKernel::RandomAccess, workload::HpccKernel::Fft};

inline constexpr driver::Scheme kAllSchemes[] = {
    driver::Scheme::OpenMosix, driver::Scheme::NoPrefetch, driver::Scheme::Ampom};

// A ready-to-extend builder for one paper cell; callers chain further knobs
// (reliability, faults, tracing) before build().
inline driver::ScenarioBuilder cell_builder(workload::HpccKernel kernel,
                                            std::uint64_t memory_mib, driver::Scheme scheme) {
  return driver::ScenarioBuilder{}.scheme(scheme).hpcc_workload(kernel, memory_mib);
}

inline driver::Scenario make_scenario(workload::HpccKernel kernel, std::uint64_t memory_mib,
                                      driver::Scheme scheme) {
  return cell_builder(kernel, memory_mib, scheme).build();
}

// The paper-cell scenario as a pool-ready factory (build() runs on the
// worker, so validation errors surface as that case's outcome).
inline SweepSpec::ScenarioFn cell(workload::HpccKernel kernel, std::uint64_t memory_mib,
                                  driver::Scheme scheme) {
  return [kernel, memory_mib, scheme] { return make_scenario(kernel, memory_mib, scheme); };
}

}  // namespace ampom::bench
