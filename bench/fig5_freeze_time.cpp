// Figure 5: migration freeze time of AMPoM, openMosix and NoPrefetch for
// all four HPCC kernels across the Table-1 program sizes.
//
// Paper reference points (Gideon 300, Fast Ethernet):
//   - openMosix grows linearly: ~53.9 s at 575 MB (DGEMM);
//   - AMPoM grows linearly with the MPT: ~0.6 s at 575 MB;
//   - NoPrefetch is flat at ~0.07 s regardless of size.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);

  for (const auto kernel : bench::kAllKernels) {
    stats::Table table{
        std::string("Fig. 5: migration freeze time (s) - ") + workload::hpcc_kernel_name(kernel),
        {"size (MB)", "AMPoM", "openMosix", "NoPrefetch", "AMPoM MPT bytes"}};
    for (const std::uint64_t mib : bench::kernel_sizes(kernel, opts.quick)) {
      double freeze[3] = {};
      sim::Bytes mpt = 0;
      for (const auto scheme : bench::kAllSchemes) {
        const auto m = bench::run_cell(kernel, mib, scheme);
        freeze[static_cast<int>(scheme)] = m.freeze_time.sec();
        if (scheme == driver::Scheme::Ampom) {
          mpt = m.page_count * mem::kMptEntryBytes;
        }
      }
      table.add_row({stats::Table::integer(mib),
                     stats::Table::num(freeze[static_cast<int>(driver::Scheme::Ampom)], 3),
                     stats::Table::num(freeze[static_cast<int>(driver::Scheme::OpenMosix)], 3),
                     stats::Table::num(freeze[static_cast<int>(driver::Scheme::NoPrefetch)], 3),
                     stats::Table::integer(mpt)});
    }
    bench::emit(table, opts);
  }
  return 0;
}
