// Figure 5: migration freeze time of AMPoM, openMosix and NoPrefetch for
// all four HPCC kernels across the Table-1 program sizes.
//
// Paper reference points (Gideon 300, Fast Ethernet):
//   - openMosix grows linearly: ~53.9 s at 575 MB (DGEMM);
//   - AMPoM grows linearly with the MPT: ~0.6 s at 575 MB;
//   - NoPrefetch is flat at ~0.07 s regardless of size.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};

  for (const auto kernel : bench::kAllKernels) {
    bench::SweepSpec spec{
        std::string("Fig. 5: migration freeze time (s) - ") + workload::hpcc_kernel_name(kernel),
        {"size (MB)", "AMPoM", "openMosix", "NoPrefetch", "AMPoM MPT bytes"}};
    for (const std::uint64_t mib : bench::kernel_sizes(kernel, opts.quick)) {
      spec.add_case({bench::cell(kernel, mib, driver::Scheme::Ampom),
                     bench::cell(kernel, mib, driver::Scheme::OpenMosix),
                     bench::cell(kernel, mib, driver::Scheme::NoPrefetch)},
                    [mib](std::span<const driver::RunMetrics> m) -> bench::SweepSpec::Row {
                      const sim::Bytes mpt = m[0].page_count * mem::kMptEntryBytes;
                      return {stats::Table::integer(mib),
                              stats::Table::num(m[0].freeze_time.sec(), 3),
                              stats::Table::num(m[1].freeze_time.sec(), 3),
                              stats::Table::num(m[2].freeze_time.sec(), 3),
                              stats::Table::integer(mpt)};
                    });
    }
    runner.run(spec);
  }
  return 0;
}
