// The paper's §1 motivation, quantified: "it is also not cost-worthy to
// migrate the entire process if we are not sure how long computing
// resources will be available at the destination node; a wrong or
// suboptimal migration decision would require the process being migrated
// again, inducing even longer freeze time."
//
// A process is migrated, and the destination turns out to be wrong: it is
// re-migrated to a third node shortly afterwards. This bench measures the
// price of that correction under each mechanism — the two freezes, the
// flush-back traffic, and the total-runtime penalty relative to a run whose
// first decision was right (single hop).

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};
  const std::uint64_t mib = opts.quick ? 65 : 230;

  bench::SweepSpec spec{"Cost of correcting a wrong placement (STREAM, " + std::to_string(mib) +
                            " MB; second hop 1 s after the first)",
                        {"mechanism", "freeze 1", "freeze 2", "flush pages", "total (s)",
                         "one-hop total (s)", "penalty"}};
  for (const auto scheme : {driver::Scheme::OpenMosix, driver::Scheme::NoPrefetch,
                            driver::Scheme::Ampom}) {
    spec.add_case({bench::cell(workload::HpccKernel::Stream, mib, scheme),
                   [mib, scheme] {
                     driver::Scenario s =
                         bench::make_scenario(workload::HpccKernel::Stream, mib, scheme);
                     s.remigrate_after = sim::Time::from_sec(1.0);
                     return s;
                   }},
                  [](std::span<const driver::RunMetrics> m) -> bench::SweepSpec::Row {
                    const driver::RunMetrics& one_hop = m[0];
                    const driver::RunMetrics& two_hop = m[1];
                    return {two_hop.scheme, two_hop.freeze_time.str(),
                            two_hop.freeze_time_2.str(),
                            stats::Table::integer(two_hop.flush_pages),
                            stats::Table::num(two_hop.total_time.sec(), 2),
                            stats::Table::num(one_hop.total_time.sec(), 2),
                            stats::Table::percent(two_hop.total_time / one_hop.total_time - 1.0)};
                  });
  }
  runner.run(spec);
  return 0;
}
