// Loss sweep: the reliable protocol stack under increasing message loss.
//
// Runs the standard migration + remote-paging experiment (DGEMM, mid size)
// with the reliable paging/migration protocol enabled and the fault
// injector dropping 0 / 1 / 2 / 5 % of all messages. Reports how much the
// loss costs (execution time, freeze time) and what the protocol did about
// it (retransmits, timeouts, duplicate suppression), then rolls the per-run
// reliability counters into one sweep-wide summary table.
//
// The 0 % row doubles as the transparency check: with no faults the
// reliable run completes with zero retransmits and the same page traffic
// as the classic protocol.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};

  const auto kernel = workload::HpccKernel::Dgemm;
  const std::uint64_t mib = opts.quick ? bench::kernel_sizes(kernel, true).front()
                                       : bench::kernel_sizes(kernel, false)[2];

  bench::SweepSpec spec{"Chaos: loss sweep - DGEMM, reliable protocol",
                        {"loss", "total (s)", "freeze (s)", "retransmits", "timeouts",
                         "dup dropped", "replayed", "chunk rexmit", "net dropped"}};
  for (const double drop : {0.0, 0.01, 0.02, 0.05}) {
    spec.add_case(
        [kernel, mib, drop] {
          driver::FaultPlan plan;
          plan.seed = 17;
          plan.default_faults.drop_probability = drop;
          return bench::cell_builder(kernel, mib, driver::Scheme::Ampom)
              .reliability(driver::ReliabilityConfig::all_on())
              .faults(plan)
              .build();
        },
        [drop](const driver::RunMetrics& m) -> bench::SweepSpec::Row {
          return {stats::Table::percent(drop, 0),
                  stats::Table::num(m.total_time.sec()),
                  stats::Table::num(m.freeze_time.sec()),
                  stats::Table::integer(m.paging_retransmits),
                  stats::Table::integer(m.paging_timeouts),
                  stats::Table::integer(m.paging_duplicates_dropped),
                  stats::Table::integer(m.deputy_pages_replayed),
                  stats::Table::integer(m.migration_chunk_retransmits),
                  stats::Table::integer(m.net_messages_dropped)};
        });
  }
  const auto metrics = runner.run(spec);

  stats::Counters rollup;
  for (const auto& case_metrics : metrics) {
    for (const driver::RunMetrics& m : case_metrics) {
      rollup.merge(m.reliability_counters());
    }
  }
  stats::Table summary{"Chaos: reliability counters (sweep total)", {"counter", "value"}};
  for (const auto& [name, value] : rollup.all()) {
    summary.add_row({name, stats::Table::integer(value)});
  }
  runner.emit(summary);
  return 0;
}
