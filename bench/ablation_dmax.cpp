// Ablation: the maximum analyzed stride dmax. The paper picks 4, arguing
// most programs do at most two-level indirection (§4). The HPCC kernels'
// fault streams are dominated by their sequential init sweeps (stride-1),
// so this sweep uses k-way interleaved sequential streams, whose fault
// patterns are exactly stride-k: prefetching works iff dmax >= k. The
// read-ahead floor is disabled here to isolate the stride detector — with
// the floor on, its fallback read-ahead already covers interleaved
// sequential streams rather well.

#include "bench/common.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};
  const sim::Bytes memory = (opts.quick ? 16 : 65) * sim::kMiB;

  bench::SweepSpec spec{"Ablation: maximum analyzed stride dmax (paper: 4)",
                        {"interleaved streams", "dmax", "fault reqs", "prevented", "total (s)"}};
  for (const std::uint64_t streams : {2u, 3u, 4u}) {
    for (const std::size_t dmax : {1u, 2u, 3u, 4u, 8u}) {
      spec.add_case(
          [memory, streams, dmax] {
            driver::Scenario s;
            s.scheme = driver::Scheme::Ampom;
            s.memory_mib = memory / sim::kMiB;
            s.workload_label = "interleaved";
            s.make_workload = [memory, streams] {
              return std::make_unique<workload::InterleavedStream>(memory, streams,
                                                                   sim::Time::from_us(15));
            };
            s.ampom.dmax = dmax;
            s.ampom.min_zone = 0;  // isolate the stride detector
            s.ampom.fallback_zone = 0;
            return s;
          },
          [streams, dmax](const driver::RunMetrics& m) -> bench::SweepSpec::Row {
            return {stats::Table::integer(streams), stats::Table::integer(dmax),
                    stats::Table::integer(m.remote_fault_requests),
                    stats::Table::percent(m.prevented_fault_fraction()),
                    stats::Table::num(m.total_time.sec(), 2)};
          });
    }
  }
  runner.run(spec);
  return 0;
}
