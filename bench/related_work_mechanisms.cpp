// The paper's §6 related-work comparison, quantified: all four migration
// mechanisms on one favourable and one unfavourable workload.
//
//   Checkpoint — §1's alternative (MIST-style): freeze while the image goes
//                to a file server AND comes back; the slowest placement.
//   openMosix  — stop-and-copy of the whole dirty set: freeze ~ address space.
//   PreCopy    — V System: copies while running; "induces unnecessary network
//                traffic if pages are modified after they are pre-copied" —
//                on write-heavy STREAM/DGEMM it resends large parts of memory
//                and its freeze converges poorly (it aborts — "(aborted)" —
//                when the process finishes before a copy round does); on a
//                hot/cold process it achieves a short freeze at moderate
//                extra traffic.
//   NoPrefetch — copy-on-reference (Accent/OSF-1 style): minimal freeze, pays
//                "the overhead to re-establish the working set" per fault.
//   AMPoM      — three pages + MPT + adaptive prefetching: minimal freeze AND
//                near-openMosix runtime.

#include <memory>

#include "bench/common.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};

  struct Case {
    const char* label;
    std::function<std::unique_ptr<proc::ReferenceStream>()> make;
    std::uint64_t memory_mib;
  };
  const std::uint64_t dgemm_mib = opts.quick ? 129 : 345;
  const std::uint64_t hot_mib = opts.quick ? 65 : 257;
  const Case cases[] = {
      {"DGEMM (write-heavy)",
       [dgemm_mib] { return workload::make_hpcc_kernel(workload::HpccKernel::Dgemm, dgemm_mib); },
       dgemm_mib},
      {"hot/cold (8 MB hot set)",
       [hot_mib] {
         return std::make_unique<workload::HotColdStream>(
             hot_mib * sim::kMiB, /*hot_pages=*/2048, /*touches=*/600000,
             /*cold_fraction=*/0.01, sim::Time::from_us(60));
       },
       hot_mib},
  };

  bench::SweepSpec spec{"Related work (paper §1/§6): five placement mechanisms compared",
                        {"workload", "mechanism", "freeze", "total (s)", "pages sent",
                         "resent", "fault reqs"}};
  for (const Case& c : cases) {
    for (const auto scheme :
         {driver::Scheme::Checkpoint, driver::Scheme::OpenMosix, driver::Scheme::PreCopy,
          driver::Scheme::NoPrefetch, driver::Scheme::Ampom}) {
      spec.add_case(
          [c, scheme] {
            driver::Scenario s;
            s.scheme = scheme;
            s.memory_mib = c.memory_mib;
            s.workload_label = c.label;
            s.make_workload = c.make;
            return s;
          },
          [c, scheme](const driver::RunMetrics& m) -> bench::SweepSpec::Row {
            const bool aborted = scheme == driver::Scheme::PreCopy && m.pages_migrated == 0;
            return {c.label, m.scheme, aborted ? "(aborted)" : m.freeze_time.str(),
                    stats::Table::num(m.total_time.sec(), 2),
                    stats::Table::integer(m.pages_migrated + m.pages_resent + m.pages_arrived),
                    stats::Table::integer(m.pages_resent),
                    stats::Table::integer(m.remote_fault_requests)};
          });
    }
  }
  runner.run(spec);
  return 0;
}
