// Microbenchmarks of the AMPoM analysis path — the code that runs inside
// the page-fault handler, whose cost Fig. 11 bounds below 0.6 % of runtime.
// These measure the real host cost of each analysis step; the simulator
// charges the calibrated equivalents from AmpomConfig.

#include <benchmark/benchmark.h>

#include "core/dependent_zone.hpp"
#include "core/locality.hpp"
#include "core/lookback_window.hpp"
#include "simcore/rng.hpp"

namespace {

using namespace ampom;

core::LookbackWindow sequential_window(std::size_t l) {
  core::LookbackWindow w{l};
  std::int64_t t = 0;
  for (std::size_t i = 0; i < l; ++i) {
    w.record(1000 + i, sim::Time::from_us(++t), 0.8);
  }
  return w;
}

core::LookbackWindow random_window(std::size_t l, std::uint64_t seed) {
  core::LookbackWindow w{l};
  sim::Rng rng{seed};
  std::int64_t t = 0;
  for (std::size_t i = 0; i < l; ++i) {
    w.record(rng.uniform(1u << 20), sim::Time::from_us(++t), 0.8);
  }
  return w;
}

void BM_WindowRecord(benchmark::State& state) {
  core::LookbackWindow w{static_cast<std::size_t>(state.range(0))};
  std::int64_t t = 0;
  mem::PageId page = 0;
  for (auto _ : state) {
    w.record(page += 2, sim::Time::from_us(++t), 0.5);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_WindowRecord)->Arg(20)->Arg(64);

void BM_LocalityScoreSequential(benchmark::State& state) {
  const auto w = sequential_window(static_cast<std::size_t>(state.range(0)));
  core::LocalityAnalyzer analyzer{4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.score(w));
  }
}
BENCHMARK(BM_LocalityScoreSequential)->Arg(20)->Arg(64);

void BM_LocalityScoreRandom(benchmark::State& state) {
  const auto w = random_window(static_cast<std::size_t>(state.range(0)), 42);
  core::LocalityAnalyzer analyzer{4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.score(w));
  }
}
BENCHMARK(BM_LocalityScoreRandom)->Arg(20)->Arg(64);

void BM_OutstandingStreams(benchmark::State& state) {
  const auto w = sequential_window(20);
  core::LocalityAnalyzer analyzer{static_cast<std::size_t>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.outstanding_streams(w));
  }
}
BENCHMARK(BM_OutstandingStreams)->Arg(2)->Arg(4)->Arg(8);

void BM_ZoneSize(benchmark::State& state) {
  core::AmpomConfig cfg;
  core::ZoneInputs in;
  in.locality_score = 0.7;
  in.paging_rate_hz = 2800.0;
  in.cpu_mean = 0.3;
  in.cpu_next = 1.0;
  in.rtt_one_way = sim::Time::from_us(100);
  in.page_transfer = sim::Time::from_us(360);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::zone_size(in, cfg));
  }
}
BENCHMARK(BM_ZoneSize);

void BM_SelectZone(benchmark::State& state) {
  const auto w = sequential_window(20);
  core::LocalityAnalyzer analyzer{4};
  const auto streams = analyzer.outstanding_streams(w);
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::select_zone(w, streams, n, 1u << 20));
  }
}
BENCHMARK(BM_SelectZone)->Arg(8)->Arg(64)->Arg(256);

// The full per-fault analysis pipeline, as the policy runs it.
void BM_FullAnalysis(benchmark::State& state) {
  core::AmpomConfig cfg;
  core::LocalityAnalyzer analyzer{cfg.dmax};
  core::LookbackWindow w{cfg.lookback_length};
  sim::Rng rng{7};
  std::int64_t t = 0;
  mem::PageId page = 5000;
  for (auto _ : state) {
    w.record(++page, sim::Time::from_us(t += 300), 0.4);
    core::ZoneInputs in;
    in.locality_score = analyzer.score(w);
    in.paging_rate_hz = w.paging_rate_hz();
    in.cpu_mean = w.mean_cpu();
    in.cpu_next = 1.0;
    in.rtt_one_way = sim::Time::from_us(100);
    in.page_transfer = sim::Time::from_us(360);
    const auto n = core::zone_size(in, cfg);
    const auto streams = analyzer.outstanding_streams(w);
    benchmark::DoNotOptimize(core::select_zone(w, streams, n, 1u << 20));
  }
}
BENCHMARK(BM_FullAnalysis);

}  // namespace

BENCHMARK_MAIN();
