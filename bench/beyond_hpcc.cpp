// Extension: the two HPCC kernels the paper's evaluation skipped (§5.1
// skips HPL, PTRANS and b_eff because "network communication performance in
// parallel programs is not the focus"). Run single-node models of HPL and
// PTRANS through all three migration mechanisms to check that the paper's
// conclusions extend: HPL behaves like DGEMM (high locality, AMPoM ~
// openMosix), PTRANS like a faster STREAM (transpose streams).

#include "bench/common.hpp"
#include "workload/hpl.hpp"
#include "workload/ptrans.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  bench::SweepRunner runner{opts};
  const std::uint64_t mib = opts.quick ? 65 : 129;

  struct Kernel {
    const char* label;
    std::function<std::unique_ptr<proc::ReferenceStream>()> make;
  };
  const Kernel kernels[] = {
      {"HPL",
       [mib] {
         workload::HplConfig cfg;
         cfg.memory = mib * sim::kMiB;
         return std::make_unique<workload::Hpl>(cfg);
       }},
      {"PTRANS",
       [mib] {
         workload::PtransConfig cfg;
         cfg.memory = mib * sim::kMiB;
         return std::make_unique<workload::Ptrans>(cfg);
       }},
  };

  bench::SweepSpec spec{"Beyond the paper: HPL and PTRANS (" + std::to_string(mib) + " MB)",
                        {"kernel", "scheme", "freeze", "total (s)", "vs openMosix",
                         "prevented", "zone/fault"}};
  for (const Kernel& kernel : kernels) {
    std::vector<bench::SweepSpec::ScenarioFn> scenarios;
    for (const auto scheme : bench::kAllSchemes) {
      scenarios.push_back([kernel, mib, scheme] {
        driver::Scenario s;
        s.scheme = scheme;
        s.memory_mib = mib;
        s.workload_label = kernel.label;
        s.make_workload = kernel.make;
        return s;
      });
    }
    // One row per scheme, all normalized against the group's openMosix run
    // (kAllSchemes order: OpenMosix, NoPrefetch, Ampom).
    spec.add_case_rows(std::move(scenarios),
                       [kernel](std::span<const driver::RunMetrics> m) {
                         const double om_total = m[0].total_time.sec();
                         std::vector<bench::SweepSpec::Row> rows;
                         for (const driver::RunMetrics& run : m) {
                           rows.push_back(
                               {kernel.label, run.scheme, run.freeze_time.str(),
                                stats::Table::num(run.total_time.sec(), 2),
                                stats::Table::percent(run.total_time.sec() / om_total - 1.0),
                                stats::Table::percent(run.prevented_fault_fraction()),
                                stats::Table::num(run.prefetched_per_fault(), 1)});
                         }
                         return rows;
                       });
  }
  runner.run(spec);
  return 0;
}
