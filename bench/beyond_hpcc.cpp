// Extension: the two HPCC kernels the paper's evaluation skipped (§5.1
// skips HPL, PTRANS and b_eff because "network communication performance in
// parallel programs is not the focus"). Run single-node models of HPL and
// PTRANS through all three migration mechanisms to check that the paper's
// conclusions extend: HPL behaves like DGEMM (high locality, AMPoM ~
// openMosix), PTRANS like a faster STREAM (transpose streams).

#include "bench/common.hpp"
#include "workload/hpl.hpp"
#include "workload/ptrans.hpp"

int main(int argc, char** argv) {
  using namespace ampom;
  const bench::Options opts = bench::parse_options(argc, argv);
  const std::uint64_t mib = opts.quick ? 65 : 129;

  struct Kernel {
    const char* label;
    std::function<std::unique_ptr<proc::ReferenceStream>()> make;
  };
  const Kernel kernels[] = {
      {"HPL",
       [mib] {
         workload::HplConfig cfg;
         cfg.memory = mib * sim::kMiB;
         return std::make_unique<workload::Hpl>(cfg);
       }},
      {"PTRANS",
       [mib] {
         workload::PtransConfig cfg;
         cfg.memory = mib * sim::kMiB;
         return std::make_unique<workload::Ptrans>(cfg);
       }},
  };

  stats::Table table{"Beyond the paper: HPL and PTRANS (" + std::to_string(mib) + " MB)",
                     {"kernel", "scheme", "freeze", "total (s)", "vs openMosix",
                      "prevented", "zone/fault"}};
  for (const Kernel& kernel : kernels) {
    double om_total = 0.0;
    for (const auto scheme : bench::kAllSchemes) {
      driver::Scenario s;
      s.scheme = scheme;
      s.memory_mib = mib;
      s.workload_label = kernel.label;
      s.make_workload = kernel.make;
      const auto m = run_experiment(s);
      if (scheme == driver::Scheme::OpenMosix) {
        om_total = m.total_time.sec();
      }
      table.add_row({kernel.label, m.scheme, m.freeze_time.str(),
                     stats::Table::num(m.total_time.sec(), 2),
                     stats::Table::percent(m.total_time.sec() / om_total - 1.0),
                     stats::Table::percent(m.prevented_fault_fraction()),
                     stats::Table::num(m.prefetched_per_fault(), 1)});
    }
  }
  bench::emit(table, opts);
  return 0;
}
