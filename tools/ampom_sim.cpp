// ampom_sim — command-line front end for experiments.
//
//   ampom_sim --kernel=stream --memory-mib=129 --scheme=ampom
//   ampom_sim --kernel=dgemm --memory-mib=575 --working-set-mib=115
//   ampom_sim --kernel=randomaccess --memory-mib=65 --broadband --trace=500
//   ampom_sim --kernel=stream --memory-mib=129 --trace-out=run.json
//   ampom_sim --kernel=stream --memory-mib=33,65,129 --scheme=ampom,openmosix --jobs=4
//
// One (kernel, size, scheme) cell prints the full metric set. Comma lists
// in --memory-mib / --scheme sweep the cross product instead — run on a
// --jobs-wide worker pool and summarized as one table, identical no matter
// how many workers ran it.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "driver/builder.hpp"
#include "driver/runner.hpp"
#include "driver/sweep_executor.hpp"
#include "simcore/fmt.hpp"
#include "stats/table.hpp"
#include "workload/hpcc.hpp"

namespace {

using namespace ampom;

[[noreturn]] void usage(int code) {
  std::cout <<
      R"(usage: ampom_sim [options]
  --kernel=NAME          dgemm | stream | randomaccess | fft   (default stream)
  --memory-mib=N[,N...]  process size(s) in MiB                (default 129)
  --working-set-mib=N    DGEMM small-working-set variant (0 = full)
  --scheme=NAME[,NAME...]openmosix | noprefetch | ampom | precopy | checkpoint
                         (default ampom)
  --seed=N               workload seed                         (default 1)
  --jobs=N               worker threads for sweeps (comma lists); results
                         are bit-identical to --jobs=1          (default 1)
  --workers=N            intra-run simulator threads (cluster-world
                         scenarios only; single-process experiments run
                         serially regardless)                   (default 0)

  environment:
  --broadband            shape the migrant/home link to 6 Mb/s + 2 ms
  --background-load=F    CPU load at the destination (0..1)
  --background-traffic=F competing traffic into the destination (0..1)
  --ram-limit-pages=N    destination RAM cap with LRU eviction (0 = off)
  --no-home-dependency   execute syscalls locally after migration

  AMPoM knobs:
  --lookback=N --dmax=N --zone-cap=N --min-zone=N --partitions=N --no-batch

  output (single run only):
  --trace=N              print every Nth dependent-zone analysis
  --trace-out=FILE       record a structured event trace and write it as
                         Chrome trace_event JSON (chrome://tracing, Perfetto)
  -h, --help
)";
  std::exit(code);
}

bool parse_u64(const std::string& arg, const char* key, std::uint64_t& out) {
  const std::string prefix = std::string(key) + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  out = std::stoull(arg.substr(prefix.size()));
  return true;
}

bool parse_double(const std::string& arg, const char* key, double& out) {
  const std::string prefix = std::string(key) + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  out = std::stod(arg.substr(prefix.size()));
  return true;
}

bool parse_str(const std::string& arg, const char* key, std::string& out) {
  const std::string prefix = std::string(key) + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  out = arg.substr(prefix.size());
  return true;
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    if (comma == std::string::npos) {
      items.push_back(value.substr(start));
      break;
    }
    items.push_back(value.substr(start, comma - start));
    start = comma + 1;
  }
  return items;
}

driver::Scheme parse_scheme(const std::string& name) {
  if (name == "openmosix") {
    return driver::Scheme::OpenMosix;
  }
  if (name == "noprefetch") {
    return driver::Scheme::NoPrefetch;
  }
  if (name == "ampom") {
    return driver::Scheme::Ampom;
  }
  if (name == "precopy") {
    return driver::Scheme::PreCopy;
  }
  if (name == "checkpoint") {
    return driver::Scheme::Checkpoint;
  }
  std::cerr << "unknown scheme: " << name << "\n";
  usage(2);
}

void print_single_run(const driver::RunMetrics& m) {
  std::cout << "workload:               " << m.workload << " (" << m.memory_mib << " MiB, "
            << m.page_count << " pages)\n"
            << "scheme:                 " << m.scheme << "\n"
            << "freeze time:            " << m.freeze_time.str() << "\n"
            << "total time:             " << m.total_time.str() << "\n"
            << "execution time:         " << m.exec_time.str() << "\n"
            << "cpu time:               " << m.cpu_time.str() << "\n"
            << "stall time:             " << m.stall_time.str() << "\n"
            << "handler time:           " << m.handler_time.str() << "\n"
            << "refs consumed:          " << m.refs_consumed << "\n"
            << "hard faults:            " << m.hard_faults << "\n"
            << "soft faults:            " << m.soft_faults << "\n"
            << "in-flight waits:        " << m.inflight_waits << "\n"
            << "fault requests:         " << m.remote_fault_requests << "\n"
            << "prefetch pages issued:  " << m.prefetch_pages_issued << "\n"
            << "pages arrived:          " << m.pages_arrived << "\n"
            << "pages moved in freeze:  " << m.pages_migrated << "\n"
            << "pages resent (precopy): " << m.pages_resent << "\n"
            << "migration span:         " << m.migration_span.str() << "\n"
            << "freeze bytes:           " << m.bytes_freeze << "\n"
            << "paging bytes:           " << m.bytes_paging << "\n"
            << "prevented faults:       "
            << sim::strfmt("%.2f%%", m.prevented_fault_fraction() * 100.0) << "\n"
            << "zone per fault:         " << sim::strfmt("%.1f", m.prefetched_per_fault()) << "\n"
            << "fault latency us (p50/p95/max): "
            << sim::strfmt("%.0f/%.0f/%.0f", m.fault_latency_p50_us, m.fault_latency_p95_us,
                           m.fault_latency_max_us)
            << "\n"
            << "analysis overhead:      "
            << sim::strfmt("%.3f%%", m.analysis_overhead_fraction() * 100.0) << "\n"
            << "syscalls (local/redir): " << m.syscalls_local << "/" << m.syscalls_redirected
            << "\n"
            << "ledger intact:          " << (m.ledger_ok ? "yes" : "NO") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string kernel_name = "stream";
  std::string scheme_list = "ampom";
  std::string memory_list = "129";
  std::uint64_t working_set_mib = 0;
  std::uint64_t trace_every = 0;
  std::uint64_t seed = 1;
  std::uint64_t ram_limit_pages = 0;
  driver::ExecPolicy exec{};
  double background_load = 0.0;
  double background_traffic = 0.0;
  bool broadband = false;
  bool home_dependency = true;
  core::AmpomConfig ampom{};
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t u = 0;
    double d = 0.0;
    if (arg == "-h" || arg == "--help") {
      usage(0);
    } else if (parse_str(arg, "--kernel", kernel_name) ||
               parse_str(arg, "--scheme", scheme_list) ||
               parse_str(arg, "--memory-mib", memory_list) ||
               parse_str(arg, "--trace-out", trace_out)) {
    } else if (parse_u64(arg, "--working-set-mib", working_set_mib) ||
               parse_u64(arg, "--seed", seed) ||
               parse_u64(arg, "--ram-limit-pages", ram_limit_pages) ||
               parse_u64(arg, "--trace", trace_every)) {
    } else if (exec.parse_flag(arg)) {
      // --jobs=N / --workers=N handled by the policy
    } else if (parse_u64(arg, "--lookback", u)) {
      ampom.lookback_length = u;
    } else if (parse_u64(arg, "--dmax", u)) {
      ampom.dmax = u;
    } else if (parse_u64(arg, "--zone-cap", u)) {
      ampom.zone_cap = u;
    } else if (parse_u64(arg, "--min-zone", u)) {
      ampom.min_zone = u;
    } else if (parse_u64(arg, "--partitions", u)) {
      ampom.window_partitions = u;
    } else if (parse_double(arg, "--background-load", d)) {
      background_load = d;
    } else if (parse_double(arg, "--background-traffic", d)) {
      background_traffic = d;
    } else if (arg == "--broadband") {
      broadband = true;
    } else if (arg == "--no-batch") {
      ampom.batch_requests = false;
    } else if (arg == "--no-home-dependency") {
      home_dependency = false;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage(2);
    }
  }

  workload::HpccKernel kernel{};
  if (kernel_name == "dgemm") {
    kernel = workload::HpccKernel::Dgemm;
  } else if (kernel_name == "stream") {
    kernel = workload::HpccKernel::Stream;
  } else if (kernel_name == "randomaccess") {
    kernel = workload::HpccKernel::RandomAccess;
  } else if (kernel_name == "fft") {
    kernel = workload::HpccKernel::Fft;
  } else {
    std::cerr << "unknown kernel: " << kernel_name << "\n";
    usage(2);
  }

  std::vector<driver::Scheme> schemes;
  for (const std::string& name : split_list(scheme_list)) {
    schemes.push_back(parse_scheme(name));
  }
  std::vector<std::uint64_t> sizes;
  for (const std::string& value : split_list(memory_list)) {
    sizes.push_back(std::stoull(value));
  }

  if (working_set_mib != 0 && kernel != workload::HpccKernel::Dgemm) {
    std::cerr << "--working-set-mib requires --kernel=dgemm\n";
    return 2;
  }

  // One builder recipe shared by the single-run and sweep paths.
  auto make_builder = [&](std::uint64_t memory_mib, driver::Scheme scheme) {
    driver::ScenarioBuilder builder;
    builder.scheme(scheme);
    if (working_set_mib != 0) {
      builder.workload(workload::hpcc_kernel_name(kernel),
                       [memory_mib, working_set_mib] {
                         return workload::make_small_ws_dgemm(memory_mib, working_set_mib);
                       },
                       memory_mib);
    } else {
      builder.workload(workload::hpcc_kernel_name(kernel),
                       [kernel, memory_mib, seed] {
                         return workload::make_hpcc_kernel(kernel, memory_mib, seed);
                       },
                       memory_mib);
    }
    builder.seed(seed)
        .ampom_config(ampom)
        .dest_background_load(background_load)
        .background_traffic(background_traffic)
        .ram_limit_pages(ram_limit_pages)
        .home_dependency(home_dependency);
    if (broadband) {
      builder.shaped_link(driver::broadband_link());
    }
    return builder;
  };

  const bool sweep = schemes.size() > 1 || sizes.size() > 1;
  if (sweep) {
    if (!trace_out.empty() || trace_every > 0) {
      std::cerr << "--trace/--trace-out apply to a single run, not a sweep\n";
      return 2;
    }
    std::vector<driver::SweepExecutor::ScenarioFactory> cases;
    for (const std::uint64_t mib : sizes) {
      for (const driver::Scheme scheme : schemes) {
        cases.push_back([&make_builder, mib, scheme] { return make_builder(mib, scheme).build(); });
      }
    }
    driver::SweepExecutor pool{{.exec = exec}};
    const auto outcomes = pool.run_all(cases);

    stats::Table table{std::string("Sweep: ") + workload::hpcc_kernel_name(kernel),
                       {"size (MB)", "scheme", "freeze", "total (s)", "fault reqs",
                        "prevented", "zone/fault"}};
    bool failed = false;
    for (const auto& outcome : outcomes) {
      if (!outcome.ok()) {
        failed = true;
        try {
          std::rethrow_exception(outcome.error);
        } catch (const std::exception& e) {
          std::cerr << "case failed: " << e.what() << "\n";
        }
        continue;
      }
      const driver::RunMetrics& m = outcome.metrics;
      table.add_row({stats::Table::integer(m.memory_mib), m.scheme, m.freeze_time.str(),
                     stats::Table::num(m.total_time.sec(), 2),
                     stats::Table::integer(m.remote_fault_requests),
                     stats::Table::percent(m.prevented_fault_fraction()),
                     stats::Table::num(m.prefetched_per_fault(), 1)});
    }
    table.print(std::cout);
    return failed ? 1 : 0;
  }

  driver::ScenarioBuilder builder = make_builder(sizes.front(), schemes.front());
  if (!trace_out.empty()) {
    builder.tracing();
  }
  if (trace_every > 0) {
    std::uint64_t count = 0;
    builder.ampom_trace([trace_every, count](const core::ZoneInputs& in, std::uint64_t n,
                                             std::size_t m) mutable {
      if (++count % trace_every != 0) {
        return;
      }
      std::cout << sim::strfmt(
          "analysis %8llu: S=%.3f r=%.0f/s c=%.2f c'=%.2f t0=%.0fus td=%.0fus N=%llu m=%zu\n",
          static_cast<unsigned long long>(count), in.locality_score, in.paging_rate_hz,
          in.cpu_mean, in.cpu_next, in.rtt_one_way.us(), in.page_transfer.us(),
          static_cast<unsigned long long>(n), m);
    });
  }

  driver::Scenario s;
  try {
    s = builder.build();
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  driver::Runner runner;
  const driver::RunMetrics m = runner.run(s);
  print_single_run(m);

  if (!trace_out.empty()) {
    if (!runner.write_trace_json(trace_out)) {
      std::cerr << "failed to write trace to " << trace_out << "\n";
      return 1;
    }
    const trace::TraceRecorder* rec = runner.trace();
    std::cout << "trace:                  " << rec->events().size() << " events -> " << trace_out;
    if (rec->events_dropped() > 0) {
      std::cout << " (" << rec->events_dropped() << " dropped at the cap)";
    }
    std::cout << "\n";
  }
  return 0;
}
