#pragma once
// Shared lexer for ampom_lint: strips comments, string/char literals and
// preprocessor directives, keeps identifier/punctuation/number tokens with
// line numbers, and records the two comment vocabularies the analyzer
// understands:
//
//   // ampom-lint: tag(reason)     suppression of a specific finding
//   // ampom: partition-local      ownership marker for the semantic pass
//
// Suppressions may appear anywhere inside a comment; ownership markers must
// be the comment's leading content (so prose mentioning the vocabulary never
// registers). Both per-file rules (lint.cpp) and the cross-TU symbol index
// (index.cpp) consume the same Lexed stream, so every file is lexed once.

#include <string>
#include <vector>

namespace ampom::lint {

enum class TokKind { Ident, Punct, Number };

struct Token {
  std::string text;
  int line{0};
  TokKind kind{TokKind::Punct};
};

struct Annotation {
  int line{0};
  std::string tag;
  bool well_formed{false};  // tag present and reason non-empty
};

// `// ampom: <tag>` ownership marker. Valid tags are checked by the symbol
// index (A1-bad-ownership for anything else), not the lexer.
struct Ownership {
  int line{0};
  std::string tag;
};

struct Lexed {
  std::vector<Token> tokens;
  std::vector<Annotation> annotations;
  std::vector<Ownership> ownership;
};

[[nodiscard]] Lexed lex(const std::string& src);

}  // namespace ampom::lint
