#pragma once
// Cross-TU semantic rules over the symbol index (see index.hpp):
//
// P-rules (partition safety): every function reachable from a partition
// callback — a lambda passed to schedule_on_node, or a function annotated
// `// ampom: partition-entry` / `partition-local` — is checked transitively:
//
//   P1-partition-calls-global   calls a `// ampom: global-only` function
//                               (the post_global escape hatch is recognized:
//                               lambdas passed to post_global run in barrier
//                               context and are exempt)
//   P2-partition-locks          takes a lock or spawns a thread
//   P3-partition-global-state   touches a member field annotated global-only
//
// Calls into the engine-boundary classes (Simulator, EventQueue,
// TraceRecorder, Logger) are not traversed: they are the mechanisms that
// *implement* the partition contract and serialize internally.
//
// T-rules (nondeterminism taint): values derived from wall-clock reads,
// rand()/std::random_device, pointer-to-integer casts and unordered-
// container iteration order are tainted at the source and propagated
// through assignments, returns (summary-based: a helper that returns its
// argument forwards taint only at call sites whose argument is tainted)
// and call arguments. A violation fires when taint reaches:
//
//   T1-taint-schedule-time   an event-schedule time (schedule_at /
//                            schedule_after / schedule_on_node)
//   T2-taint-rng-seed        an RNG seed (Rng construction, seed()/reseed())
//   T3-taint-fate-key        a fault-fate hash key (mix/mix64/fate_key)
//   T4-taint-trace-emit      a trace/metric emission (instant, async_begin,
//                            async_end, counter)
//
// Every diagnostic carries the full chain (Diagnostic::chain): entry point
// to violating call for P-rules, taint source to sink for T-rules.
// Suppression tags: partition-ok (P*), taint-ok (T*), placed at the
// diagnostic's primary line.

#include <vector>

#include "ampom_lint/index.hpp"
#include "ampom_lint/lint.hpp"

namespace ampom::lint {

[[nodiscard]] std::vector<Diagnostic> run_semantic(const SymbolIndex& index);

}  // namespace ampom::lint
