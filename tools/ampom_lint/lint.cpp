#include "ampom_lint/lint.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "ampom_lint/index.hpp"
#include "ampom_lint/lex.hpp"
#include "ampom_lint/semantic.hpp"

namespace ampom::lint {

namespace {

// ---------------------------------------------------------------------------
// Per-file rule engine (the v1 D-rules)
// ---------------------------------------------------------------------------

enum class Root { Src, Bench, Tests, Tools, Other };

[[nodiscard]] Root root_of(const std::string& path) {
  const std::size_t slash = path.find('/');
  const std::string head = path.substr(0, slash);
  if (head == "src") {
    return Root::Src;
  }
  if (head == "bench") {
    return Root::Bench;
  }
  if (head == "tests") {
    return Root::Tests;
  }
  if (head == "tools") {
    return Root::Tools;
  }
  return Root::Other;
}

// Emits *raw* diagnostics; suppression filtering happens afterwards so the
// same pass can also answer --check-suppressions (which annotations were
// actually consumed).
struct Checker {
  const std::string& path;
  Root root;
  const Lexed& lexed;
  std::vector<Diagnostic> diags;

  Checker(const std::string& p, const Lexed& lx) : path{p}, root{root_of(p)}, lexed{lx} {
    for (const Annotation& ann : lx.annotations) {
      if (!ann.well_formed) {
        Diagnostic d;
        d.file = path;
        d.line = ann.line;
        d.rule = "A0-bad-annotation";
        d.severity = Severity::Error;
        d.message = ann.tag.empty()
                        ? "ampom-lint annotation without a tag"
                        : "ampom-lint annotation '" + ann.tag +
                              "' needs a non-empty (reason)";
        diags.push_back(std::move(d));
      }
    }
  }

  void emit(int line, const char* rule, Severity sev, std::string message,
            const char* tag) {
    Diagnostic d;
    d.file = path;
    d.line = line;
    d.rule = rule;
    d.severity = sev;
    d.message = std::move(message);
    d.suppression = tag;
    diags.push_back(std::move(d));
  }

  [[nodiscard]] const Token* tok(std::size_t i) const {
    return i < lexed.tokens.size() ? &lexed.tokens[i] : nullptr;
  }
  [[nodiscard]] std::string_view text(std::size_t i) const {
    const Token* t = tok(i);
    return t ? std::string_view(t->text) : std::string_view{};
  }
  // Previous token, stepping back `k` (k=1 is the immediate predecessor).
  [[nodiscard]] std::string_view prev(std::size_t i, std::size_t k = 1) const {
    return i >= k ? std::string_view(lexed.tokens[i - k].text) : std::string_view{};
  }

  // --- D1: nondeterminism sources ------------------------------------------
  void check_nondet() {
    static constexpr std::array<std::string_view, 8> kBannedIdents = {
        "system_clock",   "steady_clock", "high_resolution_clock", "random_device",
        "mt19937",        "mt19937_64",   "default_random_engine", "minstd_rand"};
    static constexpr std::array<std::string_view, 10> kBannedCalls = {
        "time",         "clock",    "rand",      "srand",     "getenv",
        "gettimeofday", "localtime", "gmtime",   "timespec_get", "clock_gettime"};
    // Tokens after which a bare identifier is in call (statement/operand)
    // position rather than a declarator or member name.
    static constexpr std::array<std::string_view, 10> kCallPosition = {
        ";", "{", "}", "(", "=", ",", "return", "!", "&", "|"};

    for (std::size_t i = 0; i < lexed.tokens.size(); ++i) {
      const Token& t = lexed.tokens[i];
      if (t.kind != TokKind::Ident) {
        continue;
      }
      for (std::string_view banned : kBannedIdents) {
        if (t.text == banned) {
          emit(t.line, "D1-nondet-source", Severity::Error,
               "'" + t.text +
                   "' breaks seeded reproducibility; draw from the run's sim::Rng "
                   "(simcore/rng.hpp) instead",
               "nondet-ok");
        }
      }
      if (text(i + 1) != "(") {
        continue;
      }
      for (std::string_view banned : kBannedCalls) {
        if (t.text != banned) {
          continue;
        }
        const bool std_qualified = prev(i) == ":" && prev(i, 2) == ":" && prev(i, 3) == "std";
        const bool call_position =
            std::find(kCallPosition.begin(), kCallPosition.end(), prev(i)) !=
            kCallPosition.end();
        if (std_qualified || call_position) {
          emit(t.line, "D1-nondet-source", Severity::Error,
               "call to '" + t.text +
                   "()' reads ambient state; scenarios must be pure functions of "
                   "(config, seed)",
               "nondet-ok");
        }
      }
    }
  }

  // --- D2: unordered container declarations and iteration ------------------
  void check_unordered() {
    if (root == Root::Tests) {
      return;  // tests compare final results; scratch containers are fine
    }
    static constexpr std::array<std::string_view, 4> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
    std::set<std::string> vars;     // names declared with an unordered type here
    std::set<std::string> aliases;  // `using X = ...unordered...;` type names

    // Alias pass: a per-partition shard table hidden behind
    // `using ShardMap = std::unordered_map<...>` iterates in hash order just
    // the same, so alias names count as unordered types below.
    for (std::size_t i = 0; i + 2 < lexed.tokens.size(); ++i) {
      if (lexed.tokens[i].text != "using" || lexed.tokens[i + 1].kind != TokKind::Ident ||
          text(i + 2) != "=") {
        continue;
      }
      for (std::size_t k = i + 3; k < lexed.tokens.size() && text(k) != ";"; ++k) {
        const std::string_view s = text(k);
        if (std::find(kUnordered.begin(), kUnordered.end(), s) != kUnordered.end() ||
            aliases.count(std::string(s)) > 0) {
          aliases.insert(lexed.tokens[i + 1].text);
          break;
        }
      }
    }

    for (std::size_t i = 0; i < lexed.tokens.size(); ++i) {
      const Token& t = lexed.tokens[i];
      if (t.kind != TokKind::Ident) {
        continue;
      }
      // An alias used as a type (not its own definition) declares an
      // unordered variable: record the name so iteration sites get flagged.
      if (aliases.count(t.text) > 0 && prev(i) != "using" && text(i + 1) != "=") {
        std::size_t j = i + 1;
        while (j < lexed.tokens.size() &&
               (text(j) == "&" || text(j) == "*" || text(j) == "const")) {
          ++j;
        }
        const Token* name = tok(j);
        if (name != nullptr && name->kind == TokKind::Ident) {
          vars.insert(name->text);
        }
        continue;
      }
      if (std::find(kUnordered.begin(), kUnordered.end(), t.text) != kUnordered.end()) {
        emit(t.line, "D2-unordered-iter", Severity::Error,
             "'" + t.text +
                 "' has hash-order iteration that can leak into results; use "
                 "std::map/vector or annotate why order never escapes",
             "ordered-safe");
        // Find the declared variable name (skip balanced template args and
        // ref/pointer/cv tokens) so iteration sites can be flagged too.
        std::size_t j = i + 1;
        if (text(j) == "<") {
          int depth = 0;
          for (; j < lexed.tokens.size(); ++j) {
            if (text(j) == "<") {
              ++depth;
            } else if (text(j) == ">") {
              if (--depth == 0) {
                ++j;
                break;
              }
            }
          }
        }
        while (j < lexed.tokens.size() &&
               (text(j) == "&" || text(j) == "*" || text(j) == "const")) {
          ++j;
        }
        const Token* name = tok(j);
        if (name != nullptr && name->kind == TokKind::Ident) {
          vars.insert(name->text);
        }
      }
    }
    for (std::size_t i = 0; i < lexed.tokens.size(); ++i) {
      const Token& t = lexed.tokens[i];
      if (t.kind != TokKind::Ident || vars.count(t.text) == 0) {
        continue;
      }
      const bool member_iter =
          text(i + 1) == "." &&
          (text(i + 2) == "begin" || text(i + 2) == "end" || text(i + 2) == "cbegin" ||
           text(i + 2) == "cend" || text(i + 2) == "rbegin" || text(i + 2) == "rend") &&
          text(i + 3) == "(";
      const bool range_for = prev(i) == ":" && prev(i, 2) != ":" && text(i + 1) == ")";
      if (member_iter || range_for) {
        emit(t.line, "D2-unordered-iter", Severity::Error,
             "iteration over unordered container '" + t.text +
                 "' is hash-order; sort the extraction or annotate why order "
                 "cannot reach results",
             "ordered-safe");
      }
    }
  }

  // --- D3: mutable statics and singletons ----------------------------------
  void check_statics() {
    if (root != Root::Src && root != Root::Tools) {
      return;
    }
    for (std::size_t i = 0; i < lexed.tokens.size(); ++i) {
      const Token& t = lexed.tokens[i];
      if (t.kind != TokKind::Ident) {
        continue;
      }
      if (t.text == "instance" && text(i + 1) == "(") {
        emit(t.line, "D3-mutable-static", Severity::Error,
             "'instance()' is the singleton pattern this codebase retired in PR 3; "
             "pass state through driver::RunContext",
             "static-ok");
        continue;
      }
      if (t.text != "static") {
        continue;
      }
      // Immutable statics are fine.
      std::size_t j = i + 1;
      while (text(j) == "inline") {
        ++j;
      }
      if (text(j) == "constexpr" || text(j) == "consteval" || text(j) == "constinit" ||
          text(j) == "const") {
        continue;
      }
      // Declarator shape: a '(' before any of ';', '=', '{' means a static
      // member/free *function*, which carries no state.
      bool is_function = false;
      bool is_variable = false;
      int angle_depth = 0;
      for (std::size_t k = j; k < lexed.tokens.size(); ++k) {
        const std::string_view s = text(k);
        if (s == "<") {
          ++angle_depth;
        } else if (s == ">") {
          angle_depth = std::max(0, angle_depth - 1);
        } else if (angle_depth == 0) {
          if (s == "(") {
            is_function = true;
            break;
          }
          if (s == ";" || s == "=" || s == "{") {
            is_variable = true;
            break;
          }
        }
      }
      if (is_variable && !is_function) {
        emit(t.line, "D3-mutable-static", Severity::Error,
             "mutable static state is shared across parallel sweep workers and "
             "breaks run isolation; own it in the RunContext",
             "static-ok");
      }
    }
  }

  // --- D4: raw I/O in library code -----------------------------------------
  void check_raw_io() {
    if (root != Root::Src) {
      return;
    }
    static constexpr std::array<std::string_view, 3> kStreams = {"cout", "cerr", "clog"};
    static constexpr std::array<std::string_view, 7> kPrintCalls = {
        "printf", "fprintf", "vprintf", "vfprintf", "puts", "fputs", "putchar"};
    for (std::size_t i = 0; i < lexed.tokens.size(); ++i) {
      const Token& t = lexed.tokens[i];
      if (t.kind != TokKind::Ident) {
        continue;
      }
      const bool std_stream =
          std::find(kStreams.begin(), kStreams.end(), t.text) != kStreams.end() &&
          prev(i) == ":" && prev(i, 2) == ":" && prev(i, 3) == "std";
      if (std_stream) {
        emit(t.line, "D4-raw-io", Severity::Error,
             "library code must log through AMPOM_LOG(logger, ...) so sweep "
             "workers never interleave on a shared stream",
             "raw-io-ok");
        continue;
      }
      if (std::find(kPrintCalls.begin(), kPrintCalls.end(), t.text) != kPrintCalls.end() &&
          text(i + 1) == "(") {
        emit(t.line, "D4-raw-io", Severity::Error,
             "'" + t.text + "()' bypasses the per-run Logger; use AMPOM_LOG",
             "raw-io-ok");
      }
    }
  }

  // --- D5: raw sim-time tick arithmetic ------------------------------------
  void check_raw_ticks() {
    if (root != Root::Src) {
      return;
    }
    static constexpr std::array<std::string_view, 4> kFrom = {"from_ns", "from_us",
                                                              "from_ms", "from_sec"};
    static constexpr std::array<std::string_view, 4> kUnits = {"ns", "us", "ms", "sec"};
    static constexpr std::array<std::string_view, 16> kIntTypes = {
        "int",      "long",     "short",    "unsigned", "int8_t",   "int16_t",
        "int32_t",  "int64_t",  "uint8_t",  "uint16_t", "uint32_t", "uint64_t",
        "size_t",   "ptrdiff_t", "intptr_t", "uintptr_t"};
    static constexpr std::array<std::string_view, 4> kSuffixes = {"_ns", "_us", "_ms",
                                                                  "_ticks"};
    for (std::size_t i = 0; i < lexed.tokens.size(); ++i) {
      const Token& t = lexed.tokens[i];
      if (t.kind != TokKind::Ident) {
        continue;
      }
      // (a) Time::from_X(...) whose argument does arithmetic on raw .X()
      // ticks — the computation should stay in the Time domain.
      if (std::find(kFrom.begin(), kFrom.end(), t.text) != kFrom.end() &&
          text(i + 1) == "(") {
        int depth = 0;
        bool unit_extract = false;
        bool arithmetic = false;
        for (std::size_t k = i + 1; k < lexed.tokens.size(); ++k) {
          const std::string_view s = text(k);
          if (s == "(") {
            ++depth;
          } else if (s == ")") {
            if (--depth == 0) {
              break;
            }
          } else if (s == "+" || s == "-" || s == "*" || s == "/" || s == "%") {
            arithmetic = true;
          }
          if (s == "." &&
              std::find(kUnits.begin(), kUnits.end(), text(k + 1)) != kUnits.end() &&
              text(k + 2) == "(" && text(k + 3) == ")") {
            unit_extract = true;
          }
        }
        if (unit_extract && arithmetic) {
          emit(t.line, "D5-raw-ticks", Severity::Warning,
               "arithmetic on raw ticks re-wrapped via Time::" + t.text +
                   "(); use sim::Time's typed operators so unit mixes cannot "
                   "compile",
               "raw-ticks-ok");
        }
        continue;
      }
      // (b) integer variables named like durations (foo_ns, foo_ms, ...)
      // should be sim::Time.
      bool unit_named = false;
      for (std::string_view suffix : kSuffixes) {
        if (t.text.size() > suffix.size() &&
            std::string_view(t.text).substr(t.text.size() - suffix.size()) == suffix) {
          unit_named = true;
        }
      }
      if (!unit_named) {
        continue;
      }
      for (std::size_t k = 1; k <= 3 && k <= i; ++k) {
        if (std::find(kIntTypes.begin(), kIntTypes.end(), prev(i, k)) != kIntTypes.end()) {
          emit(t.line, "D5-raw-ticks", Severity::Warning,
               "integer '" + t.text +
                   "' carries a time unit in its name; represent durations as "
                   "sim::Time so mixed-unit arithmetic cannot compile",
               "raw-ticks-ok");
          break;
        }
      }
    }
  }
};

[[nodiscard]] std::vector<Diagnostic> lint_lexed(const std::string& path,
                                                 const Lexed& lexed) {
  Checker checker{path, lexed};
  checker.check_nondet();
  checker.check_unordered();
  checker.check_statics();
  checker.check_raw_io();
  checker.check_raw_ticks();
  return std::move(checker.diags);
}

// Well-formed annotation tags per line of one file.
using AnnMap = std::map<int, std::set<std::string>>;

[[nodiscard]] AnnMap ann_map_of(const Lexed& lexed) {
  AnnMap out;
  for (const Annotation& ann : lexed.annotations) {
    if (ann.well_formed) {
      out[ann.line].insert(ann.tag);
    }
  }
  return out;
}

// Drop suppressed diagnostics and mark the consuming suppression sites used.
// `sites` spans the whole report; `site_at` maps (file, line, tag) into it.
void filter_suppressed(std::vector<Diagnostic>& diags,
                       const std::map<std::string, AnnMap>& anns,
                       std::vector<SuppressionSite>& sites) {
  auto mark_used = [&](const std::string& file, int line, const std::string& tag) {
    for (SuppressionSite& s : sites) {
      if (s.file == file && s.line == line && s.tag == tag) {
        s.used = true;
      }
    }
  };
  std::vector<Diagnostic> kept;
  kept.reserve(diags.size());
  for (Diagnostic& d : diags) {
    bool suppressed = false;
    if (!d.suppression.empty()) {
      const auto file_it = anns.find(d.file);
      if (file_it != anns.end()) {
        for (int l : {d.line, d.line - 1}) {
          const auto line_it = file_it->second.find(l);
          if (line_it != file_it->second.end() &&
              line_it->second.count(d.suppression) > 0) {
            suppressed = true;
            mark_used(d.file, l, d.suppression);
            break;
          }
        }
      }
    }
    if (!suppressed) {
      kept.push_back(std::move(d));
    }
  }
  diags = std::move(kept);
}

void sort_dedupe(std::vector<Diagnostic>& diags) {
  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) {
      return a.file < b.file;
    }
    if (a.line != b.line) {
      return a.line < b.line;
    }
    if (a.rule != b.rule) {
      return a.rule < b.rule;
    }
    return a.message < b.message;
  });
  // One finding per (file, line, rule, message): `x.begin(), x.end()` on one
  // line is one violation, not two.
  diags.erase(std::unique(diags.begin(), diags.end(),
                          [](const Diagnostic& a, const Diagnostic& b) {
                            return a.file == b.file && a.line == b.line &&
                                   a.rule == b.rule && a.message == b.message;
                          }),
              diags.end());
}

void json_escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

[[nodiscard]] std::string json_str(const std::string& s) {
  std::ostringstream os;
  json_escape(os, s);
  return os.str();
}

}  // namespace

const char* severity_name(Severity s) {
  return s == Severity::Error ? "error" : "warning";
}

std::string fingerprint(const Diagnostic& d) {
  // FNV-1a 64-bit over (file, rule, message); stable across line motion.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= 0x1f;
    h *= 0x100000001b3ULL;
  };
  mix(d.file);
  mix(d.rule);
  mix(d.message);
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[h & 0xf];
    h >>= 4;
  }
  return out;
}

std::vector<Diagnostic> lint_source(const std::string& path, const std::string& content) {
  const Lexed lexed = lex(content);
  std::vector<Diagnostic> diags = lint_lexed(path, lexed);
  std::map<std::string, AnnMap> anns;
  anns[path] = ann_map_of(lexed);
  std::vector<SuppressionSite> sites;
  filter_suppressed(diags, anns, sites);
  sort_dedupe(diags);
  return diags;
}

Report analyze(const std::vector<SourceFile>& files, const AnalyzeOptions& opts) {
  const std::size_t n = files.size();
  std::vector<Lexed> lexed(n);
  std::vector<std::vector<Diagnostic>> raw(n);
  std::vector<FileIndex> per_file(n);

  // SweepExecutor-style pool: a shared atomic cursor hands files to workers;
  // every result lands in its submission slot, so the merged report is
  // byte-identical for any job count.
  unsigned jobs = opts.jobs > 0 ? static_cast<unsigned>(opts.jobs)
                                : std::max(1u, std::thread::hardware_concurrency());
  jobs = std::min<unsigned>(jobs, n == 0 ? 1 : static_cast<unsigned>(n));
  std::atomic<std::size_t> cursor{0};
  auto worker = [&] {
    for (std::size_t i = cursor.fetch_add(1); i < n; i = cursor.fetch_add(1)) {
      lexed[i] = lex(files[i].content);
      raw[i] = lint_lexed(files[i].path, lexed[i]);
      if (root_of(files[i].path) != Root::Tests) {
        per_file[i] = index_file(files[i].path, static_cast<int>(i), lexed[i]);
      }
    }
  };
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  Report report;
  report.files_scanned = n;

  std::map<std::string, AnnMap> anns;
  for (std::size_t i = 0; i < n; ++i) {
    const AnnMap m = ann_map_of(lexed[i]);
    for (const auto& [line, tags] : m) {
      for (const std::string& tag : tags) {
        report.suppressions.push_back(SuppressionSite{files[i].path, line, tag, false});
      }
    }
    anns[files[i].path] = m;
  }

  std::vector<std::string> paths;
  paths.reserve(n);
  for (const SourceFile& f : files) {
    paths.push_back(f.path);
  }
  SymbolIndex index = finalize_index(std::move(paths), std::move(lexed), std::move(per_file));

  std::vector<Diagnostic> all;
  for (std::size_t i = 0; i < n; ++i) {
    all.insert(all.end(), std::make_move_iterator(raw[i].begin()),
               std::make_move_iterator(raw[i].end()));
  }
  all.insert(all.end(), std::make_move_iterator(index.diags.begin()),
             std::make_move_iterator(index.diags.end()));
  if (opts.semantic) {
    std::vector<Diagnostic> sem = run_semantic(index);
    all.insert(all.end(), std::make_move_iterator(sem.begin()),
               std::make_move_iterator(sem.end()));
  }
  filter_suppressed(all, anns, report.suppressions);
  sort_dedupe(all);
  report.diagnostics = std::move(all);
  return report;
}

std::vector<Diagnostic> stale_suppressions(const Report& report) {
  std::vector<Diagnostic> out;
  for (const SuppressionSite& s : report.suppressions) {
    if (s.used) {
      continue;
    }
    Diagnostic d;
    d.file = s.file;
    d.line = s.line;
    d.rule = "S0-stale-suppression";
    d.severity = Severity::Error;
    d.message = "suppression '// ampom-lint: " + s.tag +
                "(...)' no longer suppresses any finding; remove it";
    out.push_back(std::move(d));
  }
  return out;
}

std::string render_text(const Report& report) {
  std::ostringstream os;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const Diagnostic& d : report.diagnostics) {
    os << d.file << ':' << d.line << ": " << severity_name(d.severity) << ": [" << d.rule
       << "] " << d.message << "\n";
    if (!d.chain.empty()) {
      os << "      chain:\n";
      for (const ChainFrame& frame : d.chain) {
        os << "        -> " << frame.note << " (" << frame.file << ':' << frame.line
           << ")\n";
      }
    }
    if (!d.suppression.empty()) {
      os << "      suppress with: // ampom-lint: " << d.suppression << "(<reason>)\n";
    }
    (d.severity == Severity::Error ? errors : warnings) += 1;
  }
  os << "ampom_lint: " << report.files_scanned << " files, " << errors << " error(s), "
     << warnings << " warning(s)\n";
  return os.str();
}

std::string render_json(const Report& report) {
  std::ostringstream os;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const Diagnostic& d : report.diagnostics) {
    (d.severity == Severity::Error ? errors : warnings) += 1;
  }
  os << "{\"tool\":\"ampom_lint\",\"schema_version\":2,\"files_scanned\":"
     << report.files_scanned << ",\"counts\":{\"error\":" << errors
     << ",\"warning\":" << warnings << "},\"violations\":[";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics) {
    if (!first) {
      os << ',';
    }
    first = false;
    os << "{\"file\":\"" << json_str(d.file) << "\",\"line\":" << d.line
       << ",\"rule\":\"" << json_str(d.rule) << "\",\"severity\":\""
       << severity_name(d.severity) << "\",\"message\":\"" << json_str(d.message)
       << "\",\"suppression\":\"" << json_str(d.suppression)
       << "\",\"fingerprint\":\"" << fingerprint(d) << "\",\"chain\":[";
    bool cfirst = true;
    for (const ChainFrame& frame : d.chain) {
      if (!cfirst) {
        os << ',';
      }
      cfirst = false;
      os << "{\"file\":\"" << json_str(frame.file) << "\",\"line\":" << frame.line
         << ",\"note\":\"" << json_str(frame.note) << "\"}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string render_sarif(const Report& report) {
  // Distinct rules, in sorted order, for the driver's rule table.
  std::vector<std::string> rules;
  for (const Diagnostic& d : report.diagnostics) {
    rules.push_back(d.rule);
  }
  std::sort(rules.begin(), rules.end());
  rules.erase(std::unique(rules.begin(), rules.end()), rules.end());
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    rule_index[rules[i]] = i;
  }

  std::ostringstream os;
  os << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
        "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
        "\"name\":\"ampom_lint\",\"version\":\"2.0.0\","
        "\"informationUri\":\"https://example.invalid/ampom\",\"rules\":[";
  bool first = true;
  for (const std::string& rule : rules) {
    if (!first) {
      os << ',';
    }
    first = false;
    os << "{\"id\":\"" << json_str(rule) << "\"}";
  }
  os << "]}},\"columnKind\":\"utf16CodeUnits\",\"results\":[";
  first = true;
  for (const Diagnostic& d : report.diagnostics) {
    if (!first) {
      os << ',';
    }
    first = false;
    os << "{\"ruleId\":\"" << json_str(d.rule)
       << "\",\"ruleIndex\":" << rule_index[d.rule] << ",\"level\":\""
       << (d.severity == Severity::Error ? "error" : "warning")
       << "\",\"message\":{\"text\":\"" << json_str(d.message)
       << "\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{"
          "\"uri\":\""
       << json_str(d.file)
       << "\",\"uriBaseId\":\"SRCROOT\"},\"region\":{\"startLine\":" << d.line
       << "}}}]";
    if (!d.chain.empty()) {
      os << ",\"relatedLocations\":[";
      bool cfirst = true;
      for (const ChainFrame& frame : d.chain) {
        if (!cfirst) {
          os << ',';
        }
        cfirst = false;
        os << "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\""
           << json_str(frame.file)
           << "\",\"uriBaseId\":\"SRCROOT\"},\"region\":{\"startLine\":"
           << frame.line << "}},\"message\":{\"text\":\"" << json_str(frame.note)
           << "\"}}";
      }
      os << ']';
    }
    os << ",\"partialFingerprints\":{\"ampomLint/v1\":\"" << fingerprint(d)
       << "\"}}";
  }
  os << "]}]}";
  return os.str();
}

// --- baseline ----------------------------------------------------------------

std::string render_baseline(const Report& report) {
  std::vector<const Diagnostic*> sorted;
  sorted.reserve(report.diagnostics.size());
  for (const Diagnostic& d : report.diagnostics) {
    sorted.push_back(&d);
  }
  // Already file/line sorted; dedupe identical fingerprints (same finding
  // spelled on two lines baselines once).
  std::set<std::string> seen;
  std::ostringstream os;
  os << "{\"tool\":\"ampom_lint\",\"baseline_version\":1,\"entries\":[";
  bool first = true;
  for (const Diagnostic* d : sorted) {
    const std::string fp = fingerprint(*d);
    if (!seen.insert(fp).second) {
      continue;
    }
    if (!first) {
      os << ',';
    }
    first = false;
    os << "\n  {\"fingerprint\":\"" << fp << "\",\"file\":\"" << json_str(d->file)
       << "\",\"rule\":\"" << json_str(d->rule) << "\",\"message\":\""
       << json_str(d->message) << "\"}";
  }
  os << "\n]}";
  return os.str();
}

namespace {

// Minimal reader for the exact format render_baseline() writes: a sequence
// of flat objects with string values. Throws on structural surprises.
[[nodiscard]] std::string read_json_string(const std::string& s, std::size_t& pos) {
  if (pos >= s.size() || s[pos] != '"') {
    throw std::runtime_error("baseline: expected string at offset " +
                             std::to_string(pos));
  }
  std::string out;
  for (++pos; pos < s.size(); ++pos) {
    const char c = s[pos];
    if (c == '"') {
      ++pos;
      return out;
    }
    if (c == '\\' && pos + 1 < s.size()) {
      ++pos;
      const char esc = s[pos];
      if (esc == 'n') {
        out.push_back('\n');
      } else if (esc == 't') {
        out.push_back('\t');
      } else {
        out.push_back(esc);
      }
      continue;
    }
    out.push_back(c);
  }
  throw std::runtime_error("baseline: unterminated string");
}

}  // namespace

Baseline parse_baseline(const std::string& json) {
  if (json.find("\"tool\":\"ampom_lint\"") == std::string::npos ||
      json.find("\"baseline_version\":1") == std::string::npos) {
    throw std::runtime_error("baseline: not an ampom_lint baseline_version 1 file");
  }
  Baseline baseline;
  std::size_t pos = 0;
  const std::string kKey = "\"fingerprint\":";
  while ((pos = json.find(kKey, pos)) != std::string::npos) {
    pos += kKey.size();
    BaselineEntry entry;
    entry.fingerprint = read_json_string(json, pos);
    auto read_field = [&](const char* key) {
      const std::string needle = std::string("\"") + key + "\":";
      const std::size_t at = json.find(needle, pos);
      if (at == std::string::npos) {
        throw std::runtime_error(std::string("baseline: missing field ") + key);
      }
      std::size_t p = at + needle.size();
      std::string value = read_json_string(json, p);
      pos = p;
      return value;
    };
    entry.file = read_field("file");
    entry.rule = read_field("rule");
    entry.message = read_field("message");
    baseline.entries.push_back(std::move(entry));
  }
  return baseline;
}

BaselineDelta apply_baseline(const Report& report, const Baseline& baseline) {
  std::set<std::string> known;
  for (const BaselineEntry& e : baseline.entries) {
    known.insert(e.fingerprint);
  }
  std::set<std::string> current;
  BaselineDelta delta;
  for (const Diagnostic& d : report.diagnostics) {
    const std::string fp = fingerprint(d);
    current.insert(fp);
    if (known.count(fp) == 0) {
      delta.fresh.push_back(d);
    }
  }
  for (const BaselineEntry& e : baseline.entries) {
    if (current.count(e.fingerprint) == 0) {
      delta.stale.push_back(e);
    }
  }
  return delta;
}

}  // namespace ampom::lint
