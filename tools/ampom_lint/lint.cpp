#include "ampom_lint/lint.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

namespace ampom::lint {

namespace {

// ---------------------------------------------------------------------------
// Lexer: strips comments, string/char literals and preprocessor directives,
// keeps identifier/punctuation tokens with line numbers, and records
// `ampom-lint: tag(reason)` annotations found inside comments.
// ---------------------------------------------------------------------------

enum class TokKind { Ident, Punct, Number };

struct Token {
  std::string text;
  int line{0};
  TokKind kind{TokKind::Punct};
};

struct Annotation {
  int line{0};
  std::string tag;
  bool well_formed{false};  // tag present and reason non-empty
};

struct Lexed {
  std::vector<Token> tokens;
  std::vector<Annotation> annotations;
};

[[nodiscard]] bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
[[nodiscard]] bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }
[[nodiscard]] bool digit(char c) { return c >= '0' && c <= '9'; }

// Parse every annotation marker in a comment body. (The marker string is
// spelled split so this function's own sources never register as one.)
void parse_annotations(std::string_view comment, int line, std::vector<Annotation>& out) {
  constexpr std::string_view kMarker = "ampom-lint:";
  std::size_t pos = 0;
  while ((pos = comment.find(kMarker, pos)) != std::string_view::npos) {
    std::size_t i = pos + kMarker.size();
    while (i < comment.size() && comment[i] == ' ') {
      ++i;
    }
    std::size_t tag_begin = i;
    while (i < comment.size() && (ident_char(comment[i]) || comment[i] == '-')) {
      ++i;
    }
    Annotation ann;
    ann.line = line;
    ann.tag = std::string(comment.substr(tag_begin, i - tag_begin));
    if (!ann.tag.empty() && i < comment.size() && comment[i] == '(') {
      const std::size_t close = comment.find(')', i);
      if (close != std::string_view::npos) {
        std::string_view reason = comment.substr(i + 1, close - i - 1);
        ann.well_formed =
            reason.find_first_not_of(" \t") != std::string_view::npos;
      }
    }
    out.push_back(std::move(ann));
    pos = i;
  }
}

[[nodiscard]] Lexed lex(const std::string& src) {
  Lexed out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool at_line_start = true;  // only whitespace seen so far on this line

  auto bump_line = [&] {
    ++line;
    at_line_start = true;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++i;
      bump_line();
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line, honouring backslash
    // continuations (annotations never live inside directives).
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          i += 2;
          bump_line();
          continue;
        }
        if (src[i] == '\n') {
          break;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t begin = i + 2;
      std::size_t end = begin;
      while (end < n && src[end] != '\n') {
        ++end;
      }
      parse_annotations(std::string_view(src).substr(begin, end - begin), line,
                        out.annotations);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t j = i + 2;
      const int open_line = line;
      std::size_t seg_begin = j;
      int seg_line = open_line;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') {
          parse_annotations(std::string_view(src).substr(seg_begin, j - seg_begin),
                            seg_line, out.annotations);
          ++line;
          seg_begin = j + 1;
          seg_line = line;
        }
        ++j;
      }
      parse_annotations(std::string_view(src).substr(seg_begin, j - seg_begin), seg_line,
                        out.annotations);
      i = (j + 1 < n) ? j + 2 : n;
      at_line_start = false;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(' && src[j] != '\n') {
        delim.push_back(src[j]);
        ++j;
      }
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = src.find(closer, j);
      const std::size_t stop = (end == std::string::npos) ? n : end + closer.size();
      for (std::size_t k = i; k < stop; ++k) {
        if (src[k] == '\n') {
          ++line;
        }
      }
      i = stop;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          ++j;
        } else if (src[j] == '\n') {
          ++line;  // unterminated on this line; keep scanning defensively
        }
        ++j;
      }
      i = (j < n) ? j + 1 : n;
      continue;
    }
    // Identifier.
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(src[j])) {
        ++j;
      }
      out.tokens.push_back(Token{src.substr(i, j - i), line, TokKind::Ident});
      i = j;
      continue;
    }
    // Number (consume so `1'000'000` or `0x1.0p-53` never splits into idents).
    if (digit(c)) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(src[j]) || src[j] == '\'' || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') && j > 0 &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
                         src[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back(Token{src.substr(i, j - i), line, TokKind::Number});
      i = j;
      continue;
    }
    // Single-character punctuation.
    out.tokens.push_back(Token{std::string(1, c), line, TokKind::Punct});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule engine
// ---------------------------------------------------------------------------

enum class Root { Src, Bench, Tests, Tools, Other };

[[nodiscard]] Root root_of(const std::string& path) {
  const std::size_t slash = path.find('/');
  const std::string head = path.substr(0, slash);
  if (head == "src") {
    return Root::Src;
  }
  if (head == "bench") {
    return Root::Bench;
  }
  if (head == "tests") {
    return Root::Tests;
  }
  if (head == "tools") {
    return Root::Tools;
  }
  return Root::Other;
}

struct Checker {
  const std::string& path;
  Root root;
  const Lexed& lexed;
  std::vector<Diagnostic> diags;
  // Annotation tags present per line (well-formed only).
  std::map<int, std::set<std::string>> ann_by_line;

  Checker(const std::string& p, const Lexed& lx) : path{p}, root{root_of(p)}, lexed{lx} {
    for (const Annotation& ann : lx.annotations) {
      if (ann.well_formed) {
        ann_by_line[ann.line].insert(ann.tag);
      } else {
        Diagnostic d;
        d.file = path;
        d.line = ann.line;
        d.rule = "A0-bad-annotation";
        d.severity = Severity::Error;
        d.message = ann.tag.empty()
                        ? "ampom-lint annotation without a tag"
                        : "ampom-lint annotation '" + ann.tag +
                              "' needs a non-empty (reason)";
        diags.push_back(std::move(d));
      }
    }
  }

  // An annotation on the offending line or the line directly above
  // suppresses the finding.
  [[nodiscard]] bool suppressed(int line, const std::string& tag) const {
    for (int l : {line, line - 1}) {
      auto it = ann_by_line.find(l);
      if (it != ann_by_line.end() && it->second.count(tag) > 0) {
        return true;
      }
    }
    return false;
  }

  void emit(int line, const char* rule, Severity sev, std::string message,
            const char* tag) {
    if (suppressed(line, tag)) {
      return;
    }
    Diagnostic d;
    d.file = path;
    d.line = line;
    d.rule = rule;
    d.severity = sev;
    d.message = std::move(message);
    d.suppression = tag;
    diags.push_back(std::move(d));
  }

  [[nodiscard]] const Token* tok(std::size_t i) const {
    return i < lexed.tokens.size() ? &lexed.tokens[i] : nullptr;
  }
  [[nodiscard]] std::string_view text(std::size_t i) const {
    const Token* t = tok(i);
    return t ? std::string_view(t->text) : std::string_view{};
  }
  // Previous token, stepping back `k` (k=1 is the immediate predecessor).
  [[nodiscard]] std::string_view prev(std::size_t i, std::size_t k = 1) const {
    return i >= k ? std::string_view(lexed.tokens[i - k].text) : std::string_view{};
  }

  // --- D1: nondeterminism sources ------------------------------------------
  void check_nondet() {
    static constexpr std::array<std::string_view, 8> kBannedIdents = {
        "system_clock",   "steady_clock", "high_resolution_clock", "random_device",
        "mt19937",        "mt19937_64",   "default_random_engine", "minstd_rand"};
    static constexpr std::array<std::string_view, 10> kBannedCalls = {
        "time",         "clock",    "rand",      "srand",     "getenv",
        "gettimeofday", "localtime", "gmtime",   "timespec_get", "clock_gettime"};
    // Tokens after which a bare identifier is in call (statement/operand)
    // position rather than a declarator or member name.
    static constexpr std::array<std::string_view, 10> kCallPosition = {
        ";", "{", "}", "(", "=", ",", "return", "!", "&", "|"};

    for (std::size_t i = 0; i < lexed.tokens.size(); ++i) {
      const Token& t = lexed.tokens[i];
      if (t.kind != TokKind::Ident) {
        continue;
      }
      for (std::string_view banned : kBannedIdents) {
        if (t.text == banned) {
          emit(t.line, "D1-nondet-source", Severity::Error,
               "'" + t.text +
                   "' breaks seeded reproducibility; draw from the run's sim::Rng "
                   "(simcore/rng.hpp) instead",
               "nondet-ok");
        }
      }
      if (text(i + 1) != "(") {
        continue;
      }
      for (std::string_view banned : kBannedCalls) {
        if (t.text != banned) {
          continue;
        }
        const bool std_qualified = prev(i) == ":" && prev(i, 2) == ":" && prev(i, 3) == "std";
        const bool call_position =
            std::find(kCallPosition.begin(), kCallPosition.end(), prev(i)) !=
            kCallPosition.end();
        if (std_qualified || call_position) {
          emit(t.line, "D1-nondet-source", Severity::Error,
               "call to '" + t.text +
                   "()' reads ambient state; scenarios must be pure functions of "
                   "(config, seed)",
               "nondet-ok");
        }
      }
    }
  }

  // --- D2: unordered container declarations and iteration ------------------
  void check_unordered() {
    if (root == Root::Tests) {
      return;  // tests compare final results; scratch containers are fine
    }
    static constexpr std::array<std::string_view, 4> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
    std::set<std::string> vars;     // names declared with an unordered type here
    std::set<std::string> aliases;  // `using X = ...unordered...;` type names

    // Alias pass: a per-partition shard table hidden behind
    // `using ShardMap = std::unordered_map<...>` iterates in hash order just
    // the same, so alias names count as unordered types below.
    for (std::size_t i = 0; i + 2 < lexed.tokens.size(); ++i) {
      if (lexed.tokens[i].text != "using" || lexed.tokens[i + 1].kind != TokKind::Ident ||
          text(i + 2) != "=") {
        continue;
      }
      for (std::size_t k = i + 3; k < lexed.tokens.size() && text(k) != ";"; ++k) {
        const std::string_view s = text(k);
        if (std::find(kUnordered.begin(), kUnordered.end(), s) != kUnordered.end() ||
            aliases.count(std::string(s)) > 0) {
          aliases.insert(lexed.tokens[i + 1].text);
          break;
        }
      }
    }

    for (std::size_t i = 0; i < lexed.tokens.size(); ++i) {
      const Token& t = lexed.tokens[i];
      if (t.kind != TokKind::Ident) {
        continue;
      }
      // An alias used as a type (not its own definition) declares an
      // unordered variable: record the name so iteration sites get flagged.
      if (aliases.count(t.text) > 0 && prev(i) != "using" && text(i + 1) != "=") {
        std::size_t j = i + 1;
        while (j < lexed.tokens.size() &&
               (text(j) == "&" || text(j) == "*" || text(j) == "const")) {
          ++j;
        }
        const Token* name = tok(j);
        if (name != nullptr && name->kind == TokKind::Ident) {
          vars.insert(name->text);
        }
        continue;
      }
      if (std::find(kUnordered.begin(), kUnordered.end(), t.text) != kUnordered.end()) {
        emit(t.line, "D2-unordered-iter", Severity::Error,
             "'" + t.text +
                 "' has hash-order iteration that can leak into results; use "
                 "std::map/vector or annotate why order never escapes",
             "ordered-safe");
        // Find the declared variable name (skip balanced template args and
        // ref/pointer/cv tokens) so iteration sites can be flagged too.
        std::size_t j = i + 1;
        if (text(j) == "<") {
          int depth = 0;
          for (; j < lexed.tokens.size(); ++j) {
            if (text(j) == "<") {
              ++depth;
            } else if (text(j) == ">") {
              if (--depth == 0) {
                ++j;
                break;
              }
            }
          }
        }
        while (j < lexed.tokens.size() &&
               (text(j) == "&" || text(j) == "*" || text(j) == "const")) {
          ++j;
        }
        const Token* name = tok(j);
        if (name != nullptr && name->kind == TokKind::Ident) {
          vars.insert(name->text);
        }
      }
    }
    for (std::size_t i = 0; i < lexed.tokens.size(); ++i) {
      const Token& t = lexed.tokens[i];
      if (t.kind != TokKind::Ident || vars.count(t.text) == 0) {
        continue;
      }
      const bool member_iter =
          text(i + 1) == "." &&
          (text(i + 2) == "begin" || text(i + 2) == "end" || text(i + 2) == "cbegin" ||
           text(i + 2) == "cend" || text(i + 2) == "rbegin" || text(i + 2) == "rend") &&
          text(i + 3) == "(";
      const bool range_for = prev(i) == ":" && prev(i, 2) != ":" && text(i + 1) == ")";
      if (member_iter || range_for) {
        emit(t.line, "D2-unordered-iter", Severity::Error,
             "iteration over unordered container '" + t.text +
                 "' is hash-order; sort the extraction or annotate why order "
                 "cannot reach results",
             "ordered-safe");
      }
    }
  }

  // --- D3: mutable statics and singletons ----------------------------------
  void check_statics() {
    if (root != Root::Src && root != Root::Tools) {
      return;
    }
    for (std::size_t i = 0; i < lexed.tokens.size(); ++i) {
      const Token& t = lexed.tokens[i];
      if (t.kind != TokKind::Ident) {
        continue;
      }
      if (t.text == "instance" && text(i + 1) == "(") {
        emit(t.line, "D3-mutable-static", Severity::Error,
             "'instance()' is the singleton pattern this codebase retired in PR 3; "
             "pass state through driver::RunContext",
             "static-ok");
        continue;
      }
      if (t.text != "static") {
        continue;
      }
      // Immutable statics are fine.
      std::size_t j = i + 1;
      while (text(j) == "inline") {
        ++j;
      }
      if (text(j) == "constexpr" || text(j) == "consteval" || text(j) == "constinit" ||
          text(j) == "const") {
        continue;
      }
      // Declarator shape: a '(' before any of ';', '=', '{' means a static
      // member/free *function*, which carries no state.
      bool is_function = false;
      bool is_variable = false;
      int angle_depth = 0;
      for (std::size_t k = j; k < lexed.tokens.size(); ++k) {
        const std::string_view s = text(k);
        if (s == "<") {
          ++angle_depth;
        } else if (s == ">") {
          angle_depth = std::max(0, angle_depth - 1);
        } else if (angle_depth == 0) {
          if (s == "(") {
            is_function = true;
            break;
          }
          if (s == ";" || s == "=" || s == "{") {
            is_variable = true;
            break;
          }
        }
      }
      if (is_variable && !is_function) {
        emit(t.line, "D3-mutable-static", Severity::Error,
             "mutable static state is shared across parallel sweep workers and "
             "breaks run isolation; own it in the RunContext",
             "static-ok");
      }
    }
  }

  // --- D4: raw I/O in library code -----------------------------------------
  void check_raw_io() {
    if (root != Root::Src) {
      return;
    }
    static constexpr std::array<std::string_view, 3> kStreams = {"cout", "cerr", "clog"};
    static constexpr std::array<std::string_view, 7> kPrintCalls = {
        "printf", "fprintf", "vprintf", "vfprintf", "puts", "fputs", "putchar"};
    for (std::size_t i = 0; i < lexed.tokens.size(); ++i) {
      const Token& t = lexed.tokens[i];
      if (t.kind != TokKind::Ident) {
        continue;
      }
      const bool std_stream =
          std::find(kStreams.begin(), kStreams.end(), t.text) != kStreams.end() &&
          prev(i) == ":" && prev(i, 2) == ":" && prev(i, 3) == "std";
      if (std_stream) {
        emit(t.line, "D4-raw-io", Severity::Error,
             "library code must log through AMPOM_LOG(logger, ...) so sweep "
             "workers never interleave on a shared stream",
             "raw-io-ok");
        continue;
      }
      if (std::find(kPrintCalls.begin(), kPrintCalls.end(), t.text) != kPrintCalls.end() &&
          text(i + 1) == "(") {
        emit(t.line, "D4-raw-io", Severity::Error,
             "'" + t.text + "()' bypasses the per-run Logger; use AMPOM_LOG",
             "raw-io-ok");
      }
    }
  }

  // --- D5: raw sim-time tick arithmetic ------------------------------------
  void check_raw_ticks() {
    if (root != Root::Src) {
      return;
    }
    static constexpr std::array<std::string_view, 4> kFrom = {"from_ns", "from_us",
                                                              "from_ms", "from_sec"};
    static constexpr std::array<std::string_view, 4> kUnits = {"ns", "us", "ms", "sec"};
    static constexpr std::array<std::string_view, 16> kIntTypes = {
        "int",      "long",     "short",    "unsigned", "int8_t",   "int16_t",
        "int32_t",  "int64_t",  "uint8_t",  "uint16_t", "uint32_t", "uint64_t",
        "size_t",   "ptrdiff_t", "intptr_t", "uintptr_t"};
    static constexpr std::array<std::string_view, 4> kSuffixes = {"_ns", "_us", "_ms",
                                                                  "_ticks"};
    for (std::size_t i = 0; i < lexed.tokens.size(); ++i) {
      const Token& t = lexed.tokens[i];
      if (t.kind != TokKind::Ident) {
        continue;
      }
      // (a) Time::from_X(...) whose argument does arithmetic on raw .X()
      // ticks — the computation should stay in the Time domain.
      if (std::find(kFrom.begin(), kFrom.end(), t.text) != kFrom.end() &&
          text(i + 1) == "(") {
        int depth = 0;
        bool unit_extract = false;
        bool arithmetic = false;
        for (std::size_t k = i + 1; k < lexed.tokens.size(); ++k) {
          const std::string_view s = text(k);
          if (s == "(") {
            ++depth;
          } else if (s == ")") {
            if (--depth == 0) {
              break;
            }
          } else if (s == "+" || s == "-" || s == "*" || s == "/" || s == "%") {
            arithmetic = true;
          }
          if (s == "." &&
              std::find(kUnits.begin(), kUnits.end(), text(k + 1)) != kUnits.end() &&
              text(k + 2) == "(" && text(k + 3) == ")") {
            unit_extract = true;
          }
        }
        if (unit_extract && arithmetic) {
          emit(t.line, "D5-raw-ticks", Severity::Warning,
               "arithmetic on raw ticks re-wrapped via Time::" + t.text +
                   "(); use sim::Time's typed operators so unit mixes cannot "
                   "compile",
               "raw-ticks-ok");
        }
        continue;
      }
      // (b) integer variables named like durations (foo_ns, foo_ms, ...)
      // should be sim::Time.
      bool unit_named = false;
      for (std::string_view suffix : kSuffixes) {
        if (t.text.size() > suffix.size() &&
            std::string_view(t.text).substr(t.text.size() - suffix.size()) == suffix) {
          unit_named = true;
        }
      }
      if (!unit_named) {
        continue;
      }
      for (std::size_t k = 1; k <= 3 && k <= i; ++k) {
        if (std::find(kIntTypes.begin(), kIntTypes.end(), prev(i, k)) != kIntTypes.end()) {
          emit(t.line, "D5-raw-ticks", Severity::Warning,
               "integer '" + t.text +
                   "' carries a time unit in its name; represent durations as "
                   "sim::Time so mixed-unit arithmetic cannot compile",
               "raw-ticks-ok");
          break;
        }
      }
    }
  }
};

void json_escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

const char* severity_name(Severity s) {
  return s == Severity::Error ? "error" : "warning";
}

std::vector<Diagnostic> lint_source(const std::string& path, const std::string& content) {
  const Lexed lexed = lex(content);
  Checker checker{path, lexed};
  checker.check_nondet();
  checker.check_unordered();
  checker.check_statics();
  checker.check_raw_io();
  checker.check_raw_ticks();
  std::sort(checker.diags.begin(), checker.diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.line != b.line) {
                return a.line < b.line;
              }
              if (a.rule != b.rule) {
                return a.rule < b.rule;
              }
              return a.message < b.message;
            });
  // One finding per (line, rule, message): `x.begin(), x.end()` on one line
  // is one violation, not two.
  checker.diags.erase(
      std::unique(checker.diags.begin(), checker.diags.end(),
                  [](const Diagnostic& a, const Diagnostic& b) {
                    return a.line == b.line && a.rule == b.rule && a.message == b.message;
                  }),
      checker.diags.end());
  return std::move(checker.diags);
}

std::string render_text(const Report& report) {
  std::ostringstream os;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const Diagnostic& d : report.diagnostics) {
    os << d.file << ':' << d.line << ": " << severity_name(d.severity) << ": [" << d.rule
       << "] " << d.message << "\n      suppress with: // ampom-lint: " << d.suppression
       << "(<reason>)\n";
    (d.severity == Severity::Error ? errors : warnings) += 1;
  }
  os << "ampom_lint: " << report.files_scanned << " files, " << errors << " error(s), "
     << warnings << " warning(s)\n";
  return os.str();
}

std::string render_json(const Report& report) {
  std::ostringstream os;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const Diagnostic& d : report.diagnostics) {
    (d.severity == Severity::Error ? errors : warnings) += 1;
  }
  os << "{\"tool\":\"ampom_lint\",\"schema_version\":1,\"files_scanned\":"
     << report.files_scanned << ",\"counts\":{\"error\":" << errors
     << ",\"warning\":" << warnings << "},\"violations\":[";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics) {
    if (!first) {
      os << ',';
    }
    first = false;
    os << "{\"file\":\"";
    json_escape(os, d.file);
    os << "\",\"line\":" << d.line << ",\"rule\":\"";
    json_escape(os, d.rule);
    os << "\",\"severity\":\"" << severity_name(d.severity) << "\",\"message\":\"";
    json_escape(os, d.message);
    os << "\",\"suppression\":\"";
    json_escape(os, d.suppression);
    os << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace ampom::lint
