#include "ampom_lint/lex.hpp"

#include <string_view>

namespace ampom::lint {

namespace {

[[nodiscard]] bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
[[nodiscard]] bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }
[[nodiscard]] bool digit(char c) { return c >= '0' && c <= '9'; }

// Parse every suppression marker in a comment body. (The marker string is
// spelled split so this function's own sources never register as one.)
// A marker preceded by `//` inside the body is a comment quoting code —
// documentation showing the syntax — and is ignored.
void parse_annotations(std::string_view comment, int line, std::vector<Annotation>& out) {
  constexpr std::string_view kMarker = "ampom-lint:";
  std::size_t pos = 0;
  while ((pos = comment.find(kMarker, pos)) != std::string_view::npos) {
    if (comment.substr(0, pos).find("//") != std::string_view::npos) {
      pos += kMarker.size();
      continue;
    }
    std::size_t i = pos + kMarker.size();
    while (i < comment.size() && comment[i] == ' ') {
      ++i;
    }
    std::size_t tag_begin = i;
    while (i < comment.size() && (ident_char(comment[i]) || comment[i] == '-')) {
      ++i;
    }
    Annotation ann;
    ann.line = line;
    ann.tag = std::string(comment.substr(tag_begin, i - tag_begin));
    if (!ann.tag.empty() && i < comment.size() && comment[i] == '(') {
      const std::size_t close = comment.find(')', i);
      if (close != std::string_view::npos) {
        std::string_view reason = comment.substr(i + 1, close - i - 1);
        ann.well_formed =
            reason.find_first_not_of(" \t") != std::string_view::npos;
      }
    }
    out.push_back(std::move(ann));
    pos = i;
  }
}

// Ownership markers are the comment's leading content: after trimming
// whitespace and doc-comment dressing the body must start with `ampom:`
// followed by the tag. This keeps prose like "see the ampom: vocabulary"
// from registering while `// ampom: global-only` binds. A nested `//` is a
// comment quoting code (documentation showing the marker itself) and never
// binds.
void parse_ownership(std::string_view comment, int line, std::vector<Ownership>& out) {
  std::size_t i = comment.find_first_not_of(" \t*");
  if (i == std::string_view::npos || comment[i] == '/') {
    return;
  }
  constexpr std::string_view kMarker = "ampom:";
  if (comment.substr(i, kMarker.size()) != kMarker) {
    return;
  }
  i += kMarker.size();
  while (i < comment.size() && (comment[i] == ' ' || comment[i] == '\t')) {
    ++i;
  }
  std::size_t tag_begin = i;
  while (i < comment.size() && (ident_char(comment[i]) || comment[i] == '-')) {
    ++i;
  }
  out.push_back(Ownership{line, std::string(comment.substr(tag_begin, i - tag_begin))});
}

void parse_comment(std::string_view comment, int line, Lexed& out) {
  parse_annotations(comment, line, out.annotations);
  parse_ownership(comment, line, out.ownership);
}

}  // namespace

Lexed lex(const std::string& src) {
  Lexed out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool at_line_start = true;  // only whitespace seen so far on this line

  auto bump_line = [&] {
    ++line;
    at_line_start = true;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++i;
      bump_line();
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line, honouring backslash
    // continuations (annotations never live inside directives).
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          i += 2;
          bump_line();
          continue;
        }
        if (src[i] == '\n') {
          break;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t begin = i + 2;
      std::size_t end = begin;
      while (end < n && src[end] != '\n') {
        ++end;
      }
      parse_comment(std::string_view(src).substr(begin, end - begin), line, out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t j = i + 2;
      const int open_line = line;
      std::size_t seg_begin = j;
      int seg_line = open_line;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') {
          parse_comment(std::string_view(src).substr(seg_begin, j - seg_begin),
                        seg_line, out);
          ++line;
          seg_begin = j + 1;
          seg_line = line;
        }
        ++j;
      }
      parse_comment(std::string_view(src).substr(seg_begin, j - seg_begin), seg_line, out);
      i = (j + 1 < n) ? j + 2 : n;
      at_line_start = false;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(' && src[j] != '\n') {
        delim.push_back(src[j]);
        ++j;
      }
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = src.find(closer, j);
      const std::size_t stop = (end == std::string::npos) ? n : end + closer.size();
      for (std::size_t k = i; k < stop; ++k) {
        if (src[k] == '\n') {
          ++line;
        }
      }
      i = stop;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          ++j;
        } else if (src[j] == '\n') {
          ++line;  // unterminated on this line; keep scanning defensively
        }
        ++j;
      }
      i = (j < n) ? j + 1 : n;
      continue;
    }
    // Identifier.
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(src[j])) {
        ++j;
      }
      out.tokens.push_back(Token{src.substr(i, j - i), line, TokKind::Ident});
      i = j;
      continue;
    }
    // Number (consume so `1'000'000` or `0x1.0p-53` never splits into idents).
    if (digit(c)) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(src[j]) || src[j] == '\'' || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') && j > 0 &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
                         src[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back(Token{src.substr(i, j - i), line, TokKind::Number});
      i = j;
      continue;
    }
    // Single-character punctuation.
    out.tokens.push_back(Token{std::string(1, c), line, TokKind::Punct});
    ++i;
  }
  return out;
}

}  // namespace ampom::lint
