// ampom_lint CLI — walks the tree and reports determinism-contract
// violations, per-file (D-rules) and cross-TU (P/T-rules). Exit codes:
// 0 clean, 1 violations found (or stale baseline entries / stale
// suppressions), 2 internal error (bad arguments, unreadable file), so CI
// and benches can distinguish "dirty tree" from "broken run".
//
//   ampom_lint [--root=DIR] [--format=text|json|sarif] [--output=FILE]
//              [--jobs=N] [--no-semantic] [--baseline=FILE]
//              [--write-baseline=FILE] [--check-suppressions] [subdir...]
//
// Default subdirs: src bench tests tools. With --baseline, only findings
// absent from the baseline fail the run; entries whose finding disappeared
// also fail (refresh with --write-baseline so the baseline never rots).

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ampom_lint/lint.hpp"

namespace {

namespace fs = std::filesystem;

struct Options {
  std::string root{"."};
  std::string format{"text"};
  std::string output;
  std::string baseline;
  std::string write_baseline;
  int jobs{1};
  bool semantic{true};
  bool check_suppressions{false};
  std::vector<std::string> subdirs;
};

[[nodiscard]] bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

[[nodiscard]] Options parse_args(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (starts_with(arg, "--root=")) {
      opts.root = arg.substr(7);
    } else if (starts_with(arg, "--format=")) {
      opts.format = arg.substr(9);
    } else if (starts_with(arg, "--output=")) {
      opts.output = arg.substr(9);
    } else if (starts_with(arg, "--jobs=")) {
      opts.jobs = std::stoi(arg.substr(7));
      if (opts.jobs < 0) {
        throw std::invalid_argument("--jobs must be >= 0");
      }
    } else if (starts_with(arg, "--baseline=")) {
      opts.baseline = arg.substr(11);
    } else if (starts_with(arg, "--write-baseline=")) {
      opts.write_baseline = arg.substr(17);
    } else if (arg == "--no-semantic") {
      opts.semantic = false;
    } else if (arg == "--check-suppressions") {
      opts.check_suppressions = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: ampom_lint [--root=DIR] [--format=text|json|sarif] "
                   "[--output=FILE] [--jobs=N] [--no-semantic] "
                   "[--baseline=FILE] [--write-baseline=FILE] "
                   "[--check-suppressions] [subdir...]\n";
      std::exit(0);
    } else if (starts_with(arg, "--")) {
      throw std::invalid_argument("unknown option: " + arg);
    } else {
      opts.subdirs.push_back(arg);
    }
  }
  if (opts.format != "text" && opts.format != "json" && opts.format != "sarif") {
    throw std::invalid_argument("--format must be 'text', 'json' or 'sarif'");
  }
  if (opts.subdirs.empty()) {
    opts.subdirs = {"src", "bench", "tests", "tools"};
  }
  return opts;
}

[[nodiscard]] bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" || ext == ".hh";
}

void write_rendered(const Options& opts, const std::string& rendered) {
  if (opts.output.empty()) {
    std::cout << rendered;
    if (opts.format != "text") {
      std::cout << '\n';
    }
  } else {
    std::ofstream out(opts.output, std::ios::binary);
    if (!out) {
      throw std::runtime_error("cannot write " + opts.output);
    }
    out << rendered << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts = parse_args(argc, argv);

    std::vector<fs::path> paths;
    for (const std::string& sub : opts.subdirs) {
      const fs::path dir = fs::path(opts.root) / sub;
      if (!fs::exists(dir)) {
        continue;  // e.g. a checkout without bench/
      }
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          paths.push_back(entry.path());
        }
      }
    }
    std::sort(paths.begin(), paths.end());

    std::vector<ampom::lint::SourceFile> files;
    files.reserve(paths.size());
    for (const fs::path& file : paths) {
      std::ifstream in(file, std::ios::binary);
      if (!in) {
        throw std::runtime_error("cannot read " + file.string());
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      files.push_back(ampom::lint::SourceFile{
          fs::relative(file, fs::path(opts.root)).generic_string(), buf.str()});
    }

    ampom::lint::AnalyzeOptions aopts;
    aopts.jobs = opts.jobs;
    aopts.semantic = opts.semantic;
    ampom::lint::Report report = ampom::lint::analyze(files, aopts);

    if (!opts.write_baseline.empty()) {
      std::ofstream out(opts.write_baseline, std::ios::binary);
      if (!out) {
        throw std::runtime_error("cannot write " + opts.write_baseline);
      }
      out << ampom::lint::render_baseline(report) << '\n';
    }

    bool fail = false;
    if (!opts.baseline.empty()) {
      std::ifstream in(opts.baseline, std::ios::binary);
      if (!in) {
        throw std::runtime_error("cannot read " + opts.baseline);
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      const ampom::lint::Baseline baseline = ampom::lint::parse_baseline(buf.str());
      const ampom::lint::BaselineDelta delta =
          ampom::lint::apply_baseline(report, baseline);
      // Render only what the run must act on: fresh findings.
      const std::size_t baselined = report.diagnostics.size() - delta.fresh.size();
      report.diagnostics = delta.fresh;
      fail = !delta.fresh.empty() || !delta.stale.empty();
      if (opts.format == "text" && baselined > 0) {
        std::cerr << "ampom_lint: " << baselined
                  << " baselined finding(s) suppressed by " << opts.baseline << '\n';
      }
      for (const ampom::lint::BaselineEntry& e : delta.stale) {
        std::cerr << "ampom_lint: stale baseline entry " << e.fingerprint << " ("
                  << e.file << ": [" << e.rule << "] " << e.message
                  << ") — the finding is gone; refresh with --write-baseline\n";
      }
    } else {
      fail = !report.diagnostics.empty();
    }

    if (opts.check_suppressions) {
      std::vector<ampom::lint::Diagnostic> stale =
          ampom::lint::stale_suppressions(report);
      if (!stale.empty()) {
        fail = true;
        report.diagnostics.insert(report.diagnostics.end(),
                                  std::make_move_iterator(stale.begin()),
                                  std::make_move_iterator(stale.end()));
      }
    }

    const std::string rendered = opts.format == "json"
                                     ? ampom::lint::render_json(report)
                                 : opts.format == "sarif"
                                     ? ampom::lint::render_sarif(report)
                                     : ampom::lint::render_text(report);
    write_rendered(opts, rendered);
    return fail ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "ampom_lint: internal error: " << e.what() << '\n';
    return 2;
  }
}
