// ampom_lint CLI — walks the tree and reports determinism-contract
// violations. Exit codes: 0 clean, 1 violations found, 2 internal error
// (bad arguments, unreadable file), so CI and benches can distinguish
// "dirty tree" from "broken run".
//
//   ampom_lint [--root=DIR] [--format=text|json] [--output=FILE] [subdir...]
//
// Default subdirs: src bench tests tools.

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ampom_lint/lint.hpp"

namespace {

namespace fs = std::filesystem;

struct Options {
  std::string root{"."};
  std::string format{"text"};
  std::string output;
  std::vector<std::string> subdirs;
};

[[nodiscard]] bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

[[nodiscard]] Options parse_args(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (starts_with(arg, "--root=")) {
      opts.root = arg.substr(7);
    } else if (starts_with(arg, "--format=")) {
      opts.format = arg.substr(9);
    } else if (starts_with(arg, "--output=")) {
      opts.output = arg.substr(9);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: ampom_lint [--root=DIR] [--format=text|json] "
                   "[--output=FILE] [subdir...]\n";
      std::exit(0);
    } else if (starts_with(arg, "--")) {
      throw std::invalid_argument("unknown option: " + arg);
    } else {
      opts.subdirs.push_back(arg);
    }
  }
  if (opts.format != "text" && opts.format != "json") {
    throw std::invalid_argument("--format must be 'text' or 'json'");
  }
  if (opts.subdirs.empty()) {
    opts.subdirs = {"src", "bench", "tests", "tools"};
  }
  return opts;
}

[[nodiscard]] bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" || ext == ".hh";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts = parse_args(argc, argv);
    ampom::lint::Report report;

    std::vector<fs::path> files;
    for (const std::string& sub : opts.subdirs) {
      const fs::path dir = fs::path(opts.root) / sub;
      if (!fs::exists(dir)) {
        continue;  // e.g. a checkout without bench/
      }
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path());
        }
      }
    }
    std::sort(files.begin(), files.end());

    for (const fs::path& file : files) {
      std::ifstream in(file, std::ios::binary);
      if (!in) {
        throw std::runtime_error("cannot read " + file.string());
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      const std::string rel =
          fs::relative(file, fs::path(opts.root)).generic_string();
      auto diags = ampom::lint::lint_source(rel, buf.str());
      report.diagnostics.insert(report.diagnostics.end(),
                                std::make_move_iterator(diags.begin()),
                                std::make_move_iterator(diags.end()));
      ++report.files_scanned;
    }

    const std::string rendered = opts.format == "json"
                                     ? ampom::lint::render_json(report)
                                     : ampom::lint::render_text(report);
    if (opts.output.empty()) {
      std::cout << rendered;
      if (opts.format == "json") {
        std::cout << '\n';
      }
    } else {
      std::ofstream out(opts.output, std::ios::binary);
      if (!out) {
        throw std::runtime_error("cannot write " + opts.output);
      }
      out << rendered << '\n';
    }
    return report.diagnostics.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "ampom_lint: internal error: " << e.what() << '\n';
    return 2;
  }
}
