#include "ampom_lint/index.hpp"

#include <algorithm>
#include <array>

namespace ampom::lint {

namespace {

// Identifiers that look like calls but are language constructs.
[[nodiscard]] bool call_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",         "for",          "while",     "switch",        "return",
      "sizeof",     "alignof",      "decltype",  "catch",         "new",
      "delete",     "throw",        "noexcept",  "typeid",        "alignas",
      "assert",     "static_assert", "defined",  "static_cast",   "dynamic_cast",
      "const_cast", "reinterpret_cast", "requires", "co_await",   "co_return",
      "co_yield",   "and",          "or",        "not",           "operator",
      "__attribute__"};
  return kKeywords.count(s) > 0;
}

[[nodiscard]] bool type_intro_keyword(const std::string& s) {
  return s == "class" || s == "struct" || s == "union";
}

struct Parser {
  const std::string& path;
  int file_idx;
  const Lexed& lx;
  const std::vector<Token>& toks;
  FileIndex out;

  // Declarations (no body) seen in this file, for ownership binding.
  struct Decl {
    std::string name;
    std::string cls;
    int line{0};
  };
  std::vector<Decl> decls;

  Parser(const std::string& p, int fi, const Lexed& l)
      : path{p}, file_idx{fi}, lx{l}, toks{l.tokens} {}

  [[nodiscard]] std::string_view text(std::size_t i) const {
    return i < toks.size() ? std::string_view(toks[i].text) : std::string_view{};
  }
  [[nodiscard]] std::string_view prev(std::size_t i, std::size_t k = 1) const {
    return i >= k ? std::string_view(toks[i - k].text) : std::string_view{};
  }

  // Index of the token matching the opener at `i`, or npos. Tokens are
  // single characters for punctuation, so this is a straight depth count.
  [[nodiscard]] std::size_t match(std::size_t i, char open, char close) const {
    int depth = 0;
    for (std::size_t j = i; j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::Punct) {
        continue;
      }
      const char c = toks[j].text[0];
      if (c == open) {
        ++depth;
      } else if (c == close) {
        if (--depth == 0) {
          return j;
        }
      }
    }
    return std::string::npos;
  }

  // --- parameter names -------------------------------------------------------
  void parse_params(Function& f, std::size_t lp, std::size_t rp) const {
    int pdepth = 0;
    int adepth = 0;
    std::string last_ident;
    bool saw_default = false;
    auto flush = [&] {
      f.params.push_back(last_ident == "void" ? std::string{} : last_ident);
      last_ident.clear();
      saw_default = false;
    };
    bool any = false;
    for (std::size_t j = lp + 1; j < rp; ++j) {
      const std::string_view s = text(j);
      any = true;
      if (s == "(" || s == "{" || s == "[") {
        ++pdepth;
      } else if (s == ")" || s == "}" || s == "]") {
        --pdepth;
      } else if (s == "<") {
        ++adepth;
      } else if (s == ">") {
        adepth = std::max(0, adepth - 1);
      } else if (pdepth == 0 && adepth == 0) {
        if (s == ",") {
          flush();
          continue;
        }
        if (s == "=") {
          saw_default = true;
          continue;
        }
        if (!saw_default && toks[j].kind == TokKind::Ident) {
          last_ident = toks[j].text;
        }
      }
    }
    if (any) {
      flush();
    }
  }

  // --- bodies ----------------------------------------------------------------

  // Active callback-argument range: lambdas inside become detached roots.
  struct CbRange {
    std::size_t end{0};
    bool partition{false};  // schedule_on_node vs post_global
  };

  void parse_body(Function& f, std::size_t begin, std::size_t end,
                  std::vector<CbRange> cb_stack) {
    for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
      while (!cb_stack.empty() && i > cb_stack.back().end) {
        cb_stack.pop_back();
      }
      const Token& t = toks[i];
      if (t.kind == TokKind::Punct && t.text[0] == '[') {
        if (text(i + 1) == "[") {  // [[attribute]]
          std::size_t j = i + 2;
          while (j + 1 < end && !(text(j) == "]" && text(j + 1) == "]")) {
            ++j;
          }
          i = j + 1;
          continue;
        }
        // Lambda introducer? Not if the '[' is a subscript.
        const std::string_view p = prev(i);
        const bool subscript =
            (i > begin) &&
            (toks[i - 1].kind == TokKind::Ident || toks[i - 1].kind == TokKind::Number ||
             p == ")" || p == "]");
        if (subscript) {
          continue;
        }
        const std::size_t cap_end = match(i, '[', ']');
        if (cap_end == std::string::npos || cap_end >= end) {
          continue;
        }
        std::size_t j = cap_end + 1;
        std::size_t lp = std::string::npos;
        std::size_t rp = std::string::npos;
        if (text(j) == "(") {
          lp = j;
          rp = match(j, '(', ')');
          if (rp == std::string::npos || rp >= end) {
            continue;
          }
          j = rp + 1;
        }
        int adepth = 0;
        while (j < end && !(adepth == 0 && (text(j) == "{" || text(j) == ";" ||
                                            text(j) == ")" || text(j) == ","))) {
          if (text(j) == "<") {
            ++adepth;
          } else if (text(j) == ">") {
            adepth = std::max(0, adepth - 1);
          }
          ++j;
        }
        if (j >= end || text(j) != "{") {
          continue;
        }
        const std::size_t body_close = match(j, '{', '}');
        if (body_close == std::string::npos || body_close > end) {
          continue;
        }
        // A lambda inside a schedule_on_node / post_global argument list is
        // a detached root; anything else stays part of `f`.
        const bool detached = !cb_stack.empty();
        if (detached) {
          const bool partition = cb_stack.back().partition;
          Function child;
          child.name = partition ? "<callback>" : "<global-callback>";
          child.cls = f.cls;  // unqualified calls prefer the enclosing class
          child.file = path;
          child.line = t.line;
          child.file_idx = file_idx;
          child.body_begin = j + 1;
          child.body_end = body_close;
          child.own = partition ? Own::PartitionEntry : Own::None;
          child.is_lambda = true;
          child.global_root = !partition;
          if (lp != std::string::npos) {
            parse_params(child, lp, rp);
          }
          parse_body(child, j + 1, body_close, {});
          f.holes.emplace_back(i, body_close + 1);
          out.functions.push_back(std::move(child));
          i = body_close;
        }
        // Plain lambda: fall through — its calls attribute to `f` as the
        // linear scan continues.
        continue;
      }
      if (t.kind != TokKind::Ident || text(i + 1) != "(") {
        continue;
      }
      if (call_keyword(t.text) || prev(i) == "~" || prev(i) == "operator") {
        continue;
      }
      CallSite call;
      call.name = t.text;
      call.line = t.line;
      call.tok = i;
      if (prev(i) == ".") {
        call.member = true;
        if (i >= 2 && toks[i - 2].kind == TokKind::Ident) {
          call.receiver = toks[i - 2].text;
        }
      } else if (prev(i) == ">" && prev(i, 2) == "-") {
        call.member = true;
        if (i >= 3 && toks[i - 3].kind == TokKind::Ident) {
          call.receiver = toks[i - 3].text;
        } else if (prev(i, 3) == "this") {
          call.receiver = "this";
        }
      } else if (prev(i) == ":" && prev(i, 2) == ":" && i >= 3 &&
                 toks[i - 3].kind == TokKind::Ident) {
        call.qual = toks[i - 3].text;
      }
      if (call.receiver == "this") {
        call.member = false;  // this->m() resolves like an unqualified m()
      }
      // Callback registration: lambdas inside these argument lists become
      // detached roots (partition entry vs sanctioned global escape).
      if (t.text == "schedule_on_node" || t.text == "post_global") {
        const std::size_t close = match(i + 1, '(', ')');
        if (close != std::string::npos && close <= end) {
          cb_stack.push_back(CbRange{close, t.text == "schedule_on_node"});
        }
      }
      f.calls.push_back(std::move(call));
    }
  }

  // --- declarations / definitions at namespace or class scope ---------------

  // Parse the region [begin, end) at class/namespace scope. `cls` is the
  // enclosing class name ("" at namespace scope).
  void parse_scope(std::size_t begin, std::size_t end, const std::string& cls) {
    for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::Ident) {
        continue;
      }
      if (t.text == "namespace") {
        std::size_t j = i + 1;
        while (j < end && (toks[j].kind == TokKind::Ident || text(j) == ":")) {
          ++j;
        }
        if (text(j) == "{") {
          const std::size_t close = match(j, '{', '}');
          if (close == std::string::npos || close > end) {
            return;
          }
          parse_scope(j + 1, close, cls);
          i = close;
        }
        continue;
      }
      if (t.text == "enum") {
        std::size_t j = i + 1;
        while (j < end && text(j) != "{" && text(j) != ";") {
          ++j;
        }
        if (text(j) == "{") {
          const std::size_t close = match(j, '{', '}');
          i = (close == std::string::npos) ? end : close;
        } else {
          i = j;
        }
        continue;
      }
      if (type_intro_keyword(t.text)) {
        // class X [: bases] { ... }  — or a forward declaration / elaborated
        // type in a declarator, which has no '{' before the ';'.
        std::size_t j = i + 1;
        while (j < end && text(j) == "[") {  // [[attributes]]
          std::size_t k = j + 2;
          while (k + 1 < end && !(text(k) == "]" && text(k + 1) == "]")) {
            ++k;
          }
          j = k + 2;
        }
        std::string name;
        if (j < end && toks[j].kind == TokKind::Ident) {
          name = toks[j].text;
        }
        int adepth = 0;
        while (j < end && !(adepth == 0 && (text(j) == "{" || text(j) == ";" ||
                                            text(j) == "=" || text(j) == ")"))) {
          if (text(j) == "<") {
            ++adepth;
          } else if (text(j) == ">") {
            adepth = std::max(0, adepth - 1);
          }
          ++j;
        }
        if (j < end && text(j) == "{" && !name.empty()) {
          const std::size_t close = match(j, '{', '}');
          if (close == std::string::npos || close > end) {
            return;
          }
          parse_scope(j + 1, close, name);
          i = close;
        } else {
          i = j;
        }
        continue;
      }
      if (t.text == "using" || t.text == "typedef") {
        while (i < end && text(i) != ";") {
          ++i;
        }
        continue;
      }
      if (t.text == "template" && text(i + 1) == "<") {
        int depth = 0;
        std::size_t j = i + 1;
        for (; j < end; ++j) {
          if (text(j) == "<") {
            ++depth;
          } else if (text(j) == ">") {
            if (--depth == 0) {
              break;
            }
          }
        }
        i = j;
        continue;
      }
      // Candidate function: ident '(' ... ')' then body / ';'.
      if (text(i + 1) != "(" || call_keyword(t.text) || prev(i) == "~" ||
          prev(i) == "operator") {
        continue;
      }
      const std::size_t lp = i + 1;
      const std::size_t rp = match(lp, '(', ')');
      if (rp == std::string::npos || rp >= end) {
        continue;
      }
      std::string qual_cls = cls;
      if (prev(i) == ":" && prev(i, 2) == ":" && i >= 3 &&
          toks[i - 3].kind == TokKind::Ident) {
        qual_cls = toks[i - 3].text;  // out-of-line Class::method
      }
      // Walk the trailer: const/noexcept/override/-> ret, ctor-init list,
      // '= default', until '{' (definition) or ';' (declaration).
      std::size_t j = rp + 1;
      bool is_def = false;
      bool is_decl = false;
      while (j < end) {
        const std::string_view s = text(j);
        if (s == "{") {
          is_def = true;
          break;
        }
        if (s == ";") {
          is_decl = true;
          break;
        }
        if (s == "=") {  // = default / = delete / = 0
          while (j < end && text(j) != ";") {
            ++j;
          }
          is_decl = true;
          break;
        }
        if (s == ":") {  // ctor initializer list
          ++j;
          while (j < end && text(j) != "{") {
            if (text(j) == "(") {
              const std::size_t c = match(j, '(', ')');
              if (c == std::string::npos) {
                break;
              }
              j = c;
            } else if (text(j) == "{") {
              break;
            } else if (toks[j].kind == TokKind::Punct && text(j) == "}") {
              break;
            } else if (text(j) == "{") {
              break;
            }
            if (text(j) == "{") {
              break;
            }
            // Brace-init member: skip balanced.
            if (text(j + 1) == "{" && toks[j].kind == TokKind::Ident) {
              const std::size_t c = match(j + 1, '{', '}');
              if (c == std::string::npos) {
                break;
              }
              j = c;
            }
            ++j;
          }
          continue;
        }
        if (toks[j].kind == TokKind::Ident || s == "-" || s == ">" || s == "<" ||
            s == "*" || s == "&" || s == "(" || s == ")" || s == "," ||
            s == "[" || s == "]") {
          if (s == "(") {
            const std::size_t c = match(j, '(', ')');
            if (c == std::string::npos || c >= end) {
              break;
            }
            j = c;
          }
          ++j;
          continue;
        }
        break;  // anything else: not a function
      }
      if (is_def) {
        const std::size_t close = match(j, '{', '}');
        if (close == std::string::npos || close > end) {
          return;
        }
        Function f;
        f.name = t.text;
        f.cls = qual_cls;
        f.file = path;
        f.line = t.line;
        f.file_idx = file_idx;
        f.body_begin = j + 1;
        f.body_end = close;
        parse_params(f, lp, rp);
        parse_body(f, j + 1, close, {});
        out.functions.push_back(std::move(f));
        i = close;
      } else if (is_decl) {
        decls.push_back(Decl{t.text, qual_cls, t.line});
        i = j;
      }
    }
  }

  // --- ownership binding -----------------------------------------------------

  void bind_ownership() {
    for (const Ownership& marker : lx.ownership) {
      Own own = Own::None;
      if (marker.tag == "partition-local") {
        own = Own::PartitionLocal;
      } else if (marker.tag == "global-only") {
        own = Own::GlobalOnly;
      } else if (marker.tag == "partition-entry") {
        own = Own::PartitionEntry;
      } else {
        Diagnostic d;
        d.file = path;
        d.line = marker.line;
        d.rule = "A1-bad-ownership";
        d.severity = Severity::Error;
        d.message = marker.tag.empty()
                        ? "ampom: ownership marker without a tag"
                        : "unknown ownership marker 'ampom: " + marker.tag +
                              "'; expected partition-local, global-only or "
                              "partition-entry";
        out.diags.push_back(std::move(d));
        continue;
      }
      bool bound = false;
      for (Function& f : out.functions) {
        if (f.file_idx == file_idx && !f.is_lambda &&
            (f.line == marker.line || f.line == marker.line + 1)) {
          f.own = own;
          bound = true;
        }
      }
      if (bound) {
        continue;
      }
      for (const Decl& decl : decls) {
        if (decl.line == marker.line || decl.line == marker.line + 1) {
          out.decl_owns.push_back(
              FileIndex::DeclOwn{decl.name, decl.cls, own, path, decl.line});
          bound = true;
        }
      }
      if (bound) {
        continue;
      }
      // A global-only marker that precedes a member declaration marks the
      // field (trailing-underscore naming convention).
      if (own == Own::GlobalOnly) {
        for (const Token& tok : toks) {
          if (tok.line > marker.line + 1) {
            break;
          }
          if (tok.line >= marker.line && tok.kind == TokKind::Ident &&
              tok.text.size() > 1 && tok.text.back() == '_') {
            out.global_fields.insert(tok.text);
            bound = true;
            break;
          }
        }
      }
      if (!bound) {
        Diagnostic d;
        d.file = path;
        d.line = marker.line;
        d.rule = "A1-bad-ownership";
        d.severity = Severity::Error;
        d.message = "ownership marker 'ampom: " + marker.tag +
                    "' binds to no function, declaration or member field";
        out.diags.push_back(std::move(d));
      }
    }
  }
};

}  // namespace

const char* own_name(Own o) {
  switch (o) {
    case Own::PartitionLocal:
      return "partition-local";
    case Own::GlobalOnly:
      return "global-only";
    case Own::PartitionEntry:
      return "partition-entry";
    case Own::None:
      break;
  }
  return "unannotated";
}

FileIndex index_file(const std::string& path, int file_idx, const Lexed& lexed) {
  Parser parser{path, file_idx, lexed};
  parser.parse_scope(0, lexed.tokens.size(), "");
  parser.bind_ownership();
  return std::move(parser.out);
}

SymbolIndex finalize_index(std::vector<std::string> paths, std::vector<Lexed> lexed,
                           std::vector<FileIndex> per_file) {
  SymbolIndex index;
  index.paths = std::move(paths);
  index.lexed = std::move(lexed);
  std::vector<FileIndex::DeclOwn> decl_owns;
  for (FileIndex& fi : per_file) {
    for (Function& f : fi.functions) {
      f.id = static_cast<int>(index.functions.size());
      index.functions.push_back(std::move(f));
    }
    index.global_fields.insert(fi.global_fields.begin(), fi.global_fields.end());
    index.diags.insert(index.diags.end(), std::make_move_iterator(fi.diags.begin()),
                       std::make_move_iterator(fi.diags.end()));
    decl_owns.insert(decl_owns.end(), fi.decl_owns.begin(), fi.decl_owns.end());
  }
  // Declaration-bound ownership applies to every matching definition (the
  // header annotation is the contract; the .cpp need not repeat it).
  for (const FileIndex::DeclOwn& d : decl_owns) {
    bool matched = false;
    for (Function& f : index.functions) {
      if (f.name == d.name && (d.cls.empty() || f.cls == d.cls)) {
        matched = true;
        if (f.own == Own::None) {
          f.own = d.own;
        }
      }
    }
    // No definition anywhere in the index (e.g. declared in a header whose
    // implementation is out of scope): synthesize a body-less function so
    // call sites still resolve to the annotated contract.
    if (!matched) {
      Function stub;
      stub.id = static_cast<int>(index.functions.size());
      stub.name = d.name;
      stub.cls = d.cls;
      stub.file = d.file;
      stub.line = d.line;
      stub.own = d.own;
      index.functions.push_back(std::move(stub));
    }
  }
  for (const Function& f : index.functions) {
    index.by_name[f.name].push_back(f.id);
  }
  return index;
}

std::vector<int> resolve_call(const SymbolIndex& index, const Function& caller,
                              const CallSite& call) {
  const auto it = index.by_name.find(call.name);
  if (it == index.by_name.end()) {
    return {};
  }
  const std::vector<int>& all = it->second;
  if (!call.qual.empty()) {
    std::vector<int> exact;
    for (int id : all) {
      if (index.functions[static_cast<std::size_t>(id)].cls == call.qual) {
        exact.push_back(id);
      }
    }
    if (!exact.empty()) {
      return exact;
    }
  }
  // C++ lookup approximation: an unqualified (or this->) call from a method
  // binds to the same class when it has such a member.
  if ((!call.member || call.receiver == "this") && !caller.cls.empty()) {
    std::vector<int> same;
    for (int id : all) {
      if (index.functions[static_cast<std::size_t>(id)].cls == caller.cls) {
        same.push_back(id);
      }
    }
    if (!same.empty()) {
      return same;
    }
  }
  return all;
}

}  // namespace ampom::lint
