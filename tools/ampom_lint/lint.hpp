#pragma once
// ampom_lint — a self-contained static-analysis pass over the simulator's
// sources that enforces the bit-identity contract before code runs.
//
// The runtime diff tests (jobs=1 vs jobs=N, tracing on/off, fault-free vs
// seed) catch nondeterminism only on the paths a scenario happens to
// exercise; this linter bans the sources of nondeterminism outright:
//
//   D1-nondet-source   wall clocks, C time, unseeded RNGs, getenv
//   D2-unordered-iter  unordered_{map,set} declarations and iteration
//   D3-mutable-static  mutable statics and instance()-style singletons
//   D4-raw-io          printf/std::cout/std::cerr instead of AMPOM_LOG
//   D5-raw-ticks       raw integer arithmetic on sim-time units
//
// Each rule has an annotation escape hatch written as a comment on the
// offending line or the line above, with a mandatory non-empty reason:
//
//   // ampom-lint: ordered-safe(membership-only; never iterated)
//
// Tags: nondet-ok (D1), ordered-safe (D2), static-ok (D3), raw-io-ok (D4),
// raw-ticks-ok (D5). A malformed annotation (missing tag or empty reason)
// is itself a violation (A0-bad-annotation).
//
// The analysis is token-based (comments, strings and preprocessor
// directives are stripped; no libclang dependency), so it is conservative
// by construction: rules trigger on syntactic patterns and the escape
// hatch documents the reviewed exceptions.

#include <cstddef>
#include <string>
#include <vector>

namespace ampom::lint {

enum class Severity { Warning, Error };

[[nodiscard]] const char* severity_name(Severity s);

struct Diagnostic {
  std::string file;         // repo-relative path as given to lint_source
  int line{0};              // 1-based
  std::string rule;         // e.g. "D2-unordered-iter"
  Severity severity{Severity::Error};
  std::string message;
  std::string suppression;  // annotation tag that would suppress this
};

// Lint one translation unit. `path` must be repo-relative with forward
// slashes; its first segment (src/bench/tests/tools) selects which rules
// apply. Unknown roots get the strictest (src) rule set.
[[nodiscard]] std::vector<Diagnostic> lint_source(const std::string& path,
                                                  const std::string& content);

struct Report {
  std::vector<Diagnostic> diagnostics;
  std::size_t files_scanned{0};
};

// Human-readable `file:line: severity: [rule] message` lines plus a summary.
[[nodiscard]] std::string render_text(const Report& report);

// Stable machine-readable schema:
//   {"tool":"ampom_lint","schema_version":1,"files_scanned":N,
//    "counts":{"error":N,"warning":N},
//    "violations":[{"file","line","rule","severity","message","suppression"}]}
[[nodiscard]] std::string render_json(const Report& report);

}  // namespace ampom::lint
