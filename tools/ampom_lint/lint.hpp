#pragma once
// ampom_lint — a self-contained static-analysis pass over the simulator's
// sources that enforces the bit-identity contract before code runs.
//
// v1 (per-file token rules): the runtime diff tests (jobs=1 vs jobs=N,
// tracing on/off, fault-free vs seed) catch nondeterminism only on the
// paths a scenario happens to exercise; these rules ban the sources of
// nondeterminism outright:
//
//   D1-nondet-source   wall clocks, C time, unseeded RNGs, getenv
//   D2-unordered-iter  unordered_{map,set} declarations and iteration
//   D3-mutable-static  mutable statics and instance()-style singletons
//   D4-raw-io          printf/std::cout/std::cerr instead of AMPOM_LOG
//   D5-raw-ticks       raw integer arithmetic on sim-time units
//
// v2 (cross-TU semantic rules): analyze() builds a whole-repo symbol index
// (function definitions, call sites, member-field accesses — see index.hpp)
// and runs two rule families over the resulting call graph:
//
//   P1-partition-calls-global   partition-reachable code calls a function
//                               declared `// ampom: global-only`
//   P2-partition-locks          partition-reachable code takes a lock or
//                               spawns a thread
//   P3-partition-global-state   partition-reachable code touches a member
//                               field declared `// ampom: global-only`
//   T1-taint-schedule-time      nondeterministic value reaches an event-
//                               schedule time
//   T2-taint-rng-seed           ... reaches an RNG seed
//   T3-taint-fate-key           ... reaches a fault-fate hash key
//   T4-taint-trace-emit         ... reaches a trace/metric emission
//
// Ownership is declared with `// ampom: partition-local | global-only |
// partition-entry` comments on the function (or field) they precede; the
// analyzer checks the contract transitively and reports the full call chain
// in the diagnostic (Diagnostic::chain).
//
// Each rule has an annotation escape hatch written as a comment on the
// offending line or the line above, with a mandatory non-empty reason:
//
//   // ampom-lint: ordered-safe(membership-only; never iterated)
//
// Tags: nondet-ok (D1), ordered-safe (D2), static-ok (D3), raw-io-ok (D4),
// raw-ticks-ok (D5), partition-ok (P*), taint-ok (T*). A malformed
// annotation (missing tag or empty reason) is itself a violation
// (A0-bad-annotation); an unknown ownership marker is A1-bad-ownership; a
// suppression that no longer suppresses anything is S0-stale-suppression
// (reported only by --check-suppressions).
//
// The analysis is token-based (comments, strings and preprocessor
// directives are stripped; no libclang dependency), so it is conservative
// by construction: rules trigger on syntactic patterns, call edges resolve
// by name, and the escape hatches document the reviewed exceptions.

#include <cstddef>
#include <string>
#include <vector>

namespace ampom::lint {

enum class Severity { Warning, Error };

[[nodiscard]] const char* severity_name(Severity s);

// One step of the path that makes a semantic finding reachable: for P-rules
// the frames walk from the partition entry point to the violating call; for
// T-rules they walk from the taint source to the sink.
struct ChainFrame {
  std::string file;
  int line{0};
  std::string note;  // e.g. "schedule_on_node callback", "InfoDaemon::tick"
};

struct Diagnostic {
  std::string file;         // repo-relative path as given to lint_source
  int line{0};              // 1-based
  std::string rule;         // e.g. "D2-unordered-iter"
  Severity severity{Severity::Error};
  std::string message;
  std::string suppression;  // annotation tag that would suppress this
  std::vector<ChainFrame> chain;  // semantic rules only; empty for D-rules
};

// Stable identity of a finding for baselining: FNV-1a over (file, rule,
// message) — line numbers are excluded so unrelated code motion does not
// churn the baseline.
[[nodiscard]] std::string fingerprint(const Diagnostic& d);

// A well-formed suppression annotation found in the tree, and whether any
// finding actually consumed it (the input to --check-suppressions).
struct SuppressionSite {
  std::string file;
  int line{0};
  std::string tag;
  bool used{false};
};

struct Report {
  std::vector<Diagnostic> diagnostics;
  std::size_t files_scanned{0};
  std::vector<SuppressionSite> suppressions;
};

// Lint one translation unit with the per-file D-rules only. `path` must be
// repo-relative with forward slashes; its first segment (src/bench/tests/
// tools) selects which rules apply. Unknown roots get the strictest (src)
// rule set.
[[nodiscard]] std::vector<Diagnostic> lint_source(const std::string& path,
                                                  const std::string& content);

// Whole-repo analysis: per-file D-rules over every file plus the cross-TU
// semantic P/T-rules over the symbol index. Files under tests/ are scanned
// by the D-rules but excluded from the index (test scaffolding is not
// partition code). `jobs` parallelizes lexing/indexing SweepExecutor-style
// (results merge in submission order, so the report is identical for any
// job count).
struct AnalyzeOptions {
  int jobs{1};          // 0 = one per hardware thread
  bool semantic{true};  // false = v1 behaviour (D-rules only)
};

struct SourceFile {
  std::string path;  // repo-relative, forward slashes
  std::string content;
};

[[nodiscard]] Report analyze(const std::vector<SourceFile>& files,
                             const AnalyzeOptions& opts = {});

// Stale suppressions as diagnostics (rule S0-stale-suppression).
[[nodiscard]] std::vector<Diagnostic> stale_suppressions(const Report& report);

// Human-readable `file:line: severity: [rule] message` lines (plus the call
// chain, indented, for semantic findings) and a summary.
[[nodiscard]] std::string render_text(const Report& report);

// Stable machine-readable schema:
//   {"tool":"ampom_lint","schema_version":2,"files_scanned":N,
//    "counts":{"error":N,"warning":N},
//    "violations":[{"file","line","rule","severity","message","suppression",
//                   "fingerprint","chain":[{"file","line","note"}]}]}
[[nodiscard]] std::string render_json(const Report& report);

// SARIF 2.1.0 (one run, one result per finding, chain frames as
// relatedLocations, fingerprint under partialFingerprints["ampomLint/v1"]).
[[nodiscard]] std::string render_sarif(const Report& report);

// --- findings baseline ------------------------------------------------------
//
// CI fails only on *new* findings: the committed baseline records the
// fingerprints of accepted findings; apply_baseline() splits the current
// report into fresh findings (fail) and stale baseline entries (a fixed
// finding — the baseline must be refreshed, which also fails so baselines
// never rot).

struct BaselineEntry {
  std::string fingerprint;
  std::string file;
  std::string rule;
  std::string message;
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

struct BaselineDelta {
  std::vector<Diagnostic> fresh;        // findings not in the baseline
  std::vector<BaselineEntry> stale;     // baseline entries with no finding
};

[[nodiscard]] std::string render_baseline(const Report& report);
[[nodiscard]] Baseline parse_baseline(const std::string& json);  // throws
[[nodiscard]] BaselineDelta apply_baseline(const Report& report,
                                           const Baseline& baseline);

}  // namespace ampom::lint
