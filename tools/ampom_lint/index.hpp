#pragma once
// Cross-translation-unit symbol index for ampom_lint's semantic rules.
//
// A lightweight, token-level model of the repo: function and method
// definitions (with their body token ranges), call sites, and the ownership
// vocabulary binding:
//
//   // ampom: partition-local    safe to run inside a partition callback;
//                                the analyzer verifies this transitively
//   // ampom: global-only        touches globally-owned state; must never
//                                be reachable from a partition callback
//   // ampom: partition-entry    a named callback root scheduled on a
//                                partition (lambdas passed to
//                                schedule_on_node are discovered
//                                automatically)
//
// Markers bind to the function definition or declaration starting on the
// same or the next line; a marker that binds to neither becomes a
// global-only *field* marker when a member-style identifier (trailing
// underscore, the repo convention) starts there instead. Declarations
// matter: annotating `void tick();` in a header marks every definition of
// that class's tick() across the index.
//
// Resolution is by name and is conservative: an unqualified call from a
// method prefers same-class methods (approximating C++ lookup); a qualified
// `Class::fn` call prefers that class; anything else fans out to every
// function with that name. Calls through function-typed values (handlers,
// std::function members) produce no edges — the registration site's
// enclosing function carries the check instead.
//
// Lambdas: a lambda passed to schedule_on_node becomes its own partition-
// entry root; a lambda passed to post_global becomes a detached global root
// (its body is *not* attributed to the enclosing function — that is the
// sanctioned escape to barrier context); any other lambda body is treated
// as part of the enclosing function.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ampom_lint/lex.hpp"
#include "ampom_lint/lint.hpp"

namespace ampom::lint {

enum class Own : std::uint8_t { None, PartitionLocal, GlobalOnly, PartitionEntry };

[[nodiscard]] const char* own_name(Own o);

struct CallSite {
  std::string name;      // simple callee name
  std::string qual;      // "Class" when written Class::name, else ""
  std::string receiver;  // "x" for x.name() / x->name(), "this", or ""
  bool member{false};
  int line{0};
  std::size_t tok{0};  // token index of the callee identifier
};

struct Function {
  int id{-1};
  std::string name;  // simple name; "<callback>" / "<global-callback>" for lambdas
  std::string cls;   // enclosing class (or Class:: qualifier), "" for free
  std::string file;  // repo-relative path
  int line{0};
  int file_idx{-1};
  std::size_t body_begin{0};  // token index of the '{' + 1
  std::size_t body_end{0};    // token index of the matching '}' (exclusive)
  // Sub-ranges of the body owned by detached lambda roots (schedule_on_node
  // / post_global callbacks): body scans must skip them.
  std::vector<std::pair<std::size_t, std::size_t>> holes;
  std::vector<CallSite> calls;
  std::vector<std::string> params;  // parameter names in order ("" if unnamed)
  Own own{Own::None};
  bool is_lambda{false};
  bool global_root{false};  // post_global callback: runs in barrier context

  [[nodiscard]] std::string display() const {
    if (is_lambda) {
      return name + " at " + file + ":" + std::to_string(line);
    }
    return cls.empty() ? name : cls + "::" + name;
  }
};

struct SymbolIndex {
  std::vector<std::string> paths;  // file_idx -> path
  std::vector<Lexed> lexed;        // file_idx -> token stream
  std::vector<Function> functions;
  std::map<std::string, std::vector<int>> by_name;  // simple name -> ids
  std::set<std::string> global_fields;  // member names marked global-only
  std::vector<Diagnostic> diags;        // A1-bad-ownership findings
};

// Index one already-lexed file into `out` (appends functions; by_name is
// rebuilt by finalize_index). Thread-compatible: distinct `FileIndex`
// results merge deterministically in file order.
struct FileIndex {
  std::vector<Function> functions;
  std::set<std::string> global_fields;
  std::vector<Diagnostic> diags;
  // Ownership bound to declarations (no body): applied to every matching
  // definition at finalize time.
  struct DeclOwn {
    std::string name;
    std::string cls;
    Own own{Own::None};
    std::string file;  // where the annotated declaration lives
    int line{0};
  };
  std::vector<DeclOwn> decl_owns;
};

[[nodiscard]] FileIndex index_file(const std::string& path, int file_idx,
                                   const Lexed& lexed);

// Merge per-file indexes (in file order), apply declaration-bound ownership,
// and build the name table.
[[nodiscard]] SymbolIndex finalize_index(std::vector<std::string> paths,
                                         std::vector<Lexed> lexed,
                                         std::vector<FileIndex> per_file);

// Resolve a call site from `caller` to candidate function ids, applying the
// same-class preference described above. Deterministic: ids ascend.
[[nodiscard]] std::vector<int> resolve_call(const SymbolIndex& index,
                                            const Function& caller,
                                            const CallSite& call);

}  // namespace ampom::lint
