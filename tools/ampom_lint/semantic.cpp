#include "ampom_lint/semantic.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string_view>

namespace ampom::lint {

namespace {

constexpr std::array<std::string_view, 4> kBoundaryClasses = {
    "Simulator", "EventQueue", "TraceRecorder", "Logger"};

constexpr std::array<std::string_view, 16> kLockIdents = {
    "mutex",          "recursive_mutex", "shared_mutex",   "timed_mutex",
    "lock_guard",     "unique_lock",     "shared_lock",    "scoped_lock",
    "condition_variable", "condition_variable_any", "thread", "jthread",
    "async",          "promise",         "packaged_task",  "counting_semaphore"};

constexpr std::array<std::string_view, 3> kWallClocks = {
    "steady_clock", "system_clock", "high_resolution_clock"};

constexpr std::array<std::string_view, 4> kNondetCalls = {"rand", "time", "clock",
                                                          "gettimeofday"};

constexpr std::array<std::string_view, 8> kPtrIntTypes = {
    "uintptr_t", "intptr_t", "uint64_t", "int64_t",
    "size_t",    "uint32_t", "long",     "unsigned"};

constexpr std::array<std::string_view, 4> kUnordered = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

[[nodiscard]] bool is_boundary(const std::string& cls) {
  return std::find(kBoundaryClasses.begin(), kBoundaryClasses.end(), cls) !=
         kBoundaryClasses.end();
}

struct Origin {
  std::string desc;  // e.g. "wall-clock read"
  std::string file;
  int line{0};
};

// Taint value of an expression / variable: intrinsically tainted (derived
// from a source), and/or derived from the enclosing function's parameters
// (used to build return summaries that stay context-sensitive).
struct TVal {
  bool intrinsic{false};
  std::set<int> params;
  std::optional<Origin> origin;

  void join(const TVal& other) {
    if (other.intrinsic && !intrinsic) {
      intrinsic = true;
      if (!origin) {
        origin = other.origin;
      }
    }
    params.insert(other.params.begin(), other.params.end());
    if (!origin && other.origin) {
      origin = other.origin;
    }
  }
  [[nodiscard]] bool any() const { return intrinsic || !params.empty(); }
};

struct FnTaint {
  std::map<std::string, TVal> vars;  // local/param name -> taint
  bool ret_intrinsic{false};
  std::set<int> ret_params;  // return value derived from these params
  std::optional<Origin> ret_origin;
};

struct Semantic {
  const SymbolIndex& ix;
  std::vector<Diagnostic> diags;
  std::vector<std::set<std::string>> unordered_vars;  // per file
  std::vector<FnTaint> taint;
  // Context-free return summaries, frozen after the fixpoint. The
  // inter-procedural argument pass afterwards pollutes `taint` (it marks
  // callee parameters intrinsically tainted for sink detection inside
  // helpers); reading return taint from the frozen copy keeps call results
  // context-sensitive — `wrap(rand())` is tainted, `wrap(5)` is not, even
  // though both resolve to the same helper.
  std::vector<FnTaint> summary;

  explicit Semantic(const SymbolIndex& index) : ix{index} {
    taint.resize(ix.functions.size());
    collect_unordered_vars();
  }

  [[nodiscard]] const std::vector<Token>& toks(const Function& f) const {
    return ix.lexed[static_cast<std::size_t>(f.file_idx)].tokens;
  }
  [[nodiscard]] std::string_view text(const Function& f, std::size_t i) const {
    const auto& t = toks(f);
    return i < t.size() ? std::string_view(t[i].text) : std::string_view{};
  }
  [[nodiscard]] bool in_hole(const Function& f, std::size_t i) const {
    for (const auto& [b, e] : f.holes) {
      if (i >= b && i < e) {
        return true;
      }
    }
    return false;
  }

  void emit(const Function& f, int line, const char* rule, std::string message,
            const char* tag, std::vector<ChainFrame> chain) {
    Diagnostic d;
    d.file = f.file;
    d.line = line;
    d.rule = rule;
    d.severity = Severity::Error;
    d.message = std::move(message);
    d.suppression = tag;
    d.chain = std::move(chain);
    diags.push_back(std::move(d));
  }

  // --- P-rules: partition-safety reachability --------------------------------

  struct Visit {
    int func{-1};
    int parent{-1};     // index into visits; -1 for roots
    int call_line{0};   // line (in the parent's file) of the call edge
    std::string note;   // root reason
  };
  std::vector<Visit> visits;
  std::map<int, int> visited;  // func id -> visit index

  [[nodiscard]] std::vector<ChainFrame> chain_to(int visit_idx) const {
    std::vector<ChainFrame> frames;
    for (int v = visit_idx; v >= 0; v = visits[static_cast<std::size_t>(v)].parent) {
      const Visit& visit = visits[static_cast<std::size_t>(v)];
      const Function& f = ix.functions[static_cast<std::size_t>(visit.func)];
      ChainFrame frame;
      frame.file = f.file;
      frame.line = f.line;
      frame.note = visit.note.empty() ? f.display() : visit.note;
      frames.push_back(std::move(frame));
    }
    std::reverse(frames.begin(), frames.end());
    return frames;
  }

  void run_partition_rules() {
    std::deque<int> queue;
    auto add_root = [&](const Function& f, const std::string& note) {
      if (visited.count(f.id) > 0) {
        return;
      }
      visited[f.id] = static_cast<int>(visits.size());
      visits.push_back(Visit{f.id, -1, f.line, note});
      queue.push_back(visited[f.id]);
    };
    for (const Function& f : ix.functions) {
      if (f.own == Own::PartitionEntry) {
        add_root(f, f.is_lambda ? "schedule_on_node callback at " + f.file + ":" +
                                      std::to_string(f.line)
                                : "partition-entry " + f.display());
      } else if (f.own == Own::PartitionLocal) {
        add_root(f, "declared partition-local: " + f.display());
      }
    }
    while (!queue.empty()) {
      const int visit_idx = queue.front();
      queue.pop_front();
      const Function& f =
          ix.functions[static_cast<std::size_t>(visits[static_cast<std::size_t>(visit_idx)].func)];
      check_body_p_rules(f, visit_idx);
      for (const CallSite& call : f.calls) {
        if (in_hole(f, call.tok)) {
          continue;  // inside a detached (post_global / nested entry) lambda
        }
        for (int target_id : resolve_call(ix, f, call)) {
          const Function& target = ix.functions[static_cast<std::size_t>(target_id)];
          if (target.global_root) {
            continue;
          }
          if (target.own == Own::GlobalOnly) {
            auto frames = chain_to(visit_idx);
            frames.push_back(ChainFrame{f.file, call.line,
                                        "calls global-only " + target.display()});
            frames.push_back(
                ChainFrame{target.file, target.line,
                           "global-only " + target.display() + " defined here"});
            emit(f, call.line, "P1-partition-calls-global",
                 "partition-reachable '" + f.display() + "' calls global-only '" +
                     target.display() +
                     "'; cross-partition state transitions must go through "
                     "post_global",
                 "partition-ok", std::move(frames));
            continue;  // the violation is the endpoint; do not traverse into it
          }
          if (is_boundary(target.cls)) {
            continue;  // the engine serializes internally
          }
          if (visited.count(target_id) == 0) {
            visited[target_id] = static_cast<int>(visits.size());
            visits.push_back(Visit{target_id, visit_idx, call.line,
                                   target.display()});
            queue.push_back(visited[target_id]);
          }
        }
      }
    }
  }

  void check_body_p_rules(const Function& f, int visit_idx) {
    const auto& tokens = toks(f);
    for (std::size_t i = f.body_begin; i < f.body_end && i < tokens.size(); ++i) {
      if (tokens[i].kind != TokKind::Ident || in_hole(f, i)) {
        continue;
      }
      const std::string& s = tokens[i].text;
      if (std::find(kLockIdents.begin(), kLockIdents.end(), s) != kLockIdents.end()) {
        auto frames = chain_to(visit_idx);
        frames.push_back(
            ChainFrame{f.file, tokens[i].line, "uses '" + s + "' here"});
        emit(f, tokens[i].line, "P2-partition-locks",
             "partition-reachable '" + f.display() + "' uses '" + s +
                 "'; partition callbacks must not take locks or spawn threads "
                 "(the window barrier is the only synchronization point)",
             "partition-ok", std::move(frames));
        continue;
      }
      if (ix.global_fields.count(s) > 0 && text(f, i + 1) != "(") {
        auto frames = chain_to(visit_idx);
        frames.push_back(
            ChainFrame{f.file, tokens[i].line, "touches '" + s + "' here"});
        emit(f, tokens[i].line, "P3-partition-global-state",
             "partition-reachable '" + f.display() +
                 "' touches globally-owned state '" + s +
                 "'; route the mutation through post_global",
             "partition-ok", std::move(frames));
      }
    }
  }

  // --- T-rules: nondeterminism taint -----------------------------------------

  void collect_unordered_vars() {
    unordered_vars.resize(ix.lexed.size());
    for (std::size_t fi = 0; fi < ix.lexed.size(); ++fi) {
      const auto& tokens = ix.lexed[fi].tokens;
      std::set<std::string>& vars = unordered_vars[fi];
      std::set<std::string> aliases;
      auto text_at = [&](std::size_t i) {
        return i < tokens.size() ? std::string_view(tokens[i].text) : std::string_view{};
      };
      for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
        if (tokens[i].text != "using" || tokens[i + 1].kind != TokKind::Ident ||
            text_at(i + 2) != "=") {
          continue;
        }
        for (std::size_t k = i + 3; k < tokens.size() && text_at(k) != ";"; ++k) {
          const std::string_view s = text_at(k);
          if (std::find(kUnordered.begin(), kUnordered.end(), s) != kUnordered.end() ||
              aliases.count(std::string(s)) > 0) {
            aliases.insert(tokens[i + 1].text);
            break;
          }
        }
      }
      for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind != TokKind::Ident) {
          continue;
        }
        const bool unordered_type =
            std::find(kUnordered.begin(), kUnordered.end(),
                      std::string_view(tokens[i].text)) != kUnordered.end();
        const bool alias_type = aliases.count(tokens[i].text) > 0 &&
                                (i == 0 || tokens[i - 1].text != "using") &&
                                text_at(i + 1) != "=";
        if (!unordered_type && !alias_type) {
          continue;
        }
        std::size_t j = i + 1;
        if (unordered_type && text_at(j) == "<") {
          int depth = 0;
          for (; j < tokens.size(); ++j) {
            if (text_at(j) == "<") {
              ++depth;
            } else if (text_at(j) == ">") {
              if (--depth == 0) {
                ++j;
                break;
              }
            }
          }
        }
        while (j < tokens.size() &&
               (text_at(j) == "&" || text_at(j) == "*" || text_at(j) == "const")) {
          ++j;
        }
        if (j < tokens.size() && tokens[j].kind == TokKind::Ident) {
          vars.insert(tokens[j].text);
        }
      }
    }
  }

  // Taint source starting at token i of f's file; nullopt if none.
  [[nodiscard]] std::optional<Origin> source_at(const Function& f,
                                                std::size_t i) const {
    const auto& tokens = toks(f);
    const Token& t = tokens[i];
    if (t.kind != TokKind::Ident) {
      return std::nullopt;
    }
    const int line = t.line;
    if (std::find(kWallClocks.begin(), kWallClocks.end(),
                  std::string_view(t.text)) != kWallClocks.end()) {
      return Origin{"wall-clock read ('" + t.text + "')", f.file, line};
    }
    if (t.text == "random_device") {
      return Origin{"std::random_device", f.file, line};
    }
    if (std::find(kNondetCalls.begin(), kNondetCalls.end(),
                  std::string_view(t.text)) != kNondetCalls.end() &&
        text(f, i + 1) == "(") {
      return Origin{"'" + t.text + "()' call", f.file, line};
    }
    if (t.text == "reinterpret_cast" && text(f, i + 1) == "<" &&
        std::find(kPtrIntTypes.begin(), kPtrIntTypes.end(), text(f, i + 2)) !=
            kPtrIntTypes.end()) {
      return Origin{"pointer-to-integer cast", f.file, line};
    }
    if (std::find(kPtrIntTypes.begin(), kPtrIntTypes.end(),
                  std::string_view(t.text)) != kPtrIntTypes.end() &&
        (t.text == "uintptr_t" || t.text == "intptr_t") && i > 0 &&
        tokens[i - 1].text == "(" && text(f, i + 1) == ")") {
      return Origin{"pointer-to-integer cast", f.file, line};
    }
    return std::nullopt;
  }

  // Split the argument list of a call whose '(' (or '{') is at `open` into
  // top-level comma-separated token ranges.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> split_args(
      const Function& f, std::size_t open, char open_c, char close_c) const {
    std::vector<std::pair<std::size_t, std::size_t>> args;
    const auto& tokens = toks(f);
    int depth = 0;
    int adepth = 0;
    std::size_t begin = open + 1;
    for (std::size_t j = open; j < tokens.size(); ++j) {
      const std::string& s = tokens[j].text;
      if (tokens[j].kind == TokKind::Punct) {
        const char c = s[0];
        if (c == open_c || c == '(' || c == '[' ||
            (c == '{' && open_c == '{')) {
          ++depth;
        } else if (c == close_c || c == ')' || c == ']' ||
                   (c == '}' && open_c == '{')) {
          --depth;
          if (depth == 0) {
            if (j > begin) {
              args.emplace_back(begin, j);
            }
            break;
          }
        } else if (c == '<') {
          ++adepth;
        } else if (c == '>') {
          adepth = std::max(0, adepth - 1);
        } else if (c == ',' && depth == 1 && adepth == 0) {
          args.emplace_back(begin, j);
          begin = j + 1;
        }
      }
    }
    return args;
  }

  // Taint of the expression tokens [begin, end) evaluated in `f` with the
  // current variable state. Applies callee return summaries at call sites,
  // so a helper that returns its argument forwards taint only when this
  // call's argument is tainted.
  [[nodiscard]] TVal eval_range(const Function& f, const FnTaint& state,
                                std::size_t begin, std::size_t end) const {
    TVal val;
    const auto& tokens = toks(f);
    for (std::size_t i = begin; i < end && i < tokens.size(); ++i) {
      if (tokens[i].kind != TokKind::Ident) {
        continue;
      }
      if (auto origin = source_at(f, i)) {
        TVal src;
        src.intrinsic = true;
        src.origin = std::move(origin);
        val.join(src);
        continue;
      }
      const std::string& name = tokens[i].text;
      if (text(f, i + 1) == "(") {
        // Call: apply return summaries of every resolution candidate.
        CallSite probe;
        probe.name = name;
        probe.tok = i;
        if (i >= 1 && tokens[i - 1].text == ":" && i >= 3 &&
            tokens[i - 2].text == ":" && tokens[i - 3].kind == TokKind::Ident) {
          probe.qual = tokens[i - 3].text;
        }
        const auto args = split_args(f, i + 1, '(', ')');
        std::vector<TVal> arg_vals;
        arg_vals.reserve(args.size());
        for (const auto& [ab, ae] : args) {
          arg_vals.push_back(eval_range(f, state, ab, ae));
          val.join(arg_vals.back());  // conservatively: g(tainted) may pass it on
        }
        for (int id : resolve_call(ix, f, probe)) {
          const FnTaint& callee =
              (summary.empty() ? taint : summary)[static_cast<std::size_t>(id)];
          if (callee.ret_intrinsic) {
            TVal ret;
            ret.intrinsic = true;
            ret.origin = callee.ret_origin;
            val.join(ret);
          }
        }
        continue;
      }
      const auto it = state.vars.find(name);
      if (it != state.vars.end()) {
        val.join(it->second);
      }
    }
    return val;
  }

  // One local dataflow pass over `f`. Returns true if the function's state
  // (variable taints or return summary) changed.
  bool local_pass(const Function& f) {
    FnTaint& state = taint[static_cast<std::size_t>(f.id)];
    const auto& tokens = toks(f);
    bool changed = false;
    auto taint_var = [&](const std::string& name, TVal val) {
      if (!val.any()) {
        return;
      }
      TVal& slot = state.vars[name];
      const bool before_i = slot.intrinsic;
      const std::size_t before_p = slot.params.size();
      slot.join(val);
      if (slot.intrinsic != before_i || slot.params.size() != before_p) {
        changed = true;
      }
    };
    // Seed parameter dependencies once.
    for (std::size_t k = 0; k < f.params.size(); ++k) {
      if (f.params[k].empty()) {
        continue;
      }
      TVal v;
      v.params.insert(static_cast<int>(k));
      taint_var(f.params[k], v);
    }
    for (std::size_t i = f.body_begin; i < f.body_end && i < tokens.size(); ++i) {
      if (in_hole(f, i) || tokens[i].kind != TokKind::Ident) {
        continue;
      }
      const std::string& name = tokens[i].text;
      // return <expr>;
      if (name == "return") {
        std::size_t j = i + 1;
        int depth = 0;
        while (j < f.body_end &&
               !(depth == 0 && toks(f)[j].kind == TokKind::Punct &&
                 toks(f)[j].text[0] == ';')) {
          const std::string& s = tokens[j].text;
          if (s == "(" || s == "{" || s == "[") {
            ++depth;
          } else if (s == ")" || s == "}" || s == "]") {
            --depth;
          }
          ++j;
        }
        const TVal v = eval_range(f, state, i + 1, j);
        if (v.intrinsic && !state.ret_intrinsic) {
          state.ret_intrinsic = true;
          state.ret_origin = v.origin;
          changed = true;
        }
        const std::size_t before = state.ret_params.size();
        state.ret_params.insert(v.params.begin(), v.params.end());
        changed |= state.ret_params.size() != before;
        i = j;
        continue;
      }
      // Range-for over an unordered container taints the loop variable.
      if (name == "for" && text(f, i + 1) == "(") {
        const std::size_t close = find_close(f, i + 1, '(', ')');
        std::size_t colon = std::string::npos;
        for (std::size_t j = i + 2; j < close; ++j) {
          if (tokens[j].kind == TokKind::Punct && tokens[j].text[0] == ':' &&
              (j + 1 >= close || tokens[j + 1].text[0] != ':') &&
              (j == 0 || tokens[j - 1].text[0] != ':')) {
            colon = j;
            break;
          }
        }
        if (colon != std::string::npos && colon + 1 < close &&
            tokens[colon + 1].kind == TokKind::Ident &&
            unordered_vars[static_cast<std::size_t>(f.file_idx)].count(
                tokens[colon + 1].text) > 0 &&
            tokens[colon - 1].kind == TokKind::Ident) {
          TVal v;
          v.intrinsic = true;
          v.origin = Origin{"hash-order iteration over '" + tokens[colon + 1].text + "'",
                            f.file, tokens[colon].line};
          taint_var(tokens[colon - 1].text, v);
        }
        continue;
      }
      // Assignment / compound assignment to an identifier.
      std::size_t rhs_begin = std::string::npos;
      if (text(f, i + 1) == "=" && text(f, i + 2) != "=") {
        rhs_begin = i + 2;
      } else if ((text(f, i + 1) == "+" || text(f, i + 1) == "-" ||
                  text(f, i + 1) == "*" || text(f, i + 1) == "/" ||
                  text(f, i + 1) == "%" || text(f, i + 1) == "^" ||
                  text(f, i + 1) == "|" || text(f, i + 1) == "&") &&
                 text(f, i + 2) == "=" && text(f, i + 3) != "=") {
        rhs_begin = i + 3;
      }
      if (rhs_begin == std::string::npos) {
        continue;
      }
      std::size_t j = rhs_begin;
      int depth = 0;
      while (j < f.body_end) {
        const std::string& s = tokens[j].text;
        if (tokens[j].kind == TokKind::Punct) {
          const char c = s[0];
          if (c == '(' || c == '{' || c == '[') {
            ++depth;
          } else if (c == ')' || c == '}' || c == ']') {
            if (depth == 0) {
              break;
            }
            --depth;
          } else if ((c == ';' || c == ',') && depth == 0) {
            break;
          }
        }
        ++j;
      }
      taint_var(name, eval_range(f, state, rhs_begin, j));
      i = j;
    }
    return changed;
  }

  [[nodiscard]] std::size_t find_close(const Function& f, std::size_t open, char oc,
                                       char cc) const {
    const auto& tokens = toks(f);
    int depth = 0;
    for (std::size_t j = open; j < tokens.size(); ++j) {
      if (tokens[j].kind != TokKind::Punct) {
        continue;
      }
      if (tokens[j].text[0] == oc) {
        ++depth;
      } else if (tokens[j].text[0] == cc) {
        if (--depth == 0) {
          return j;
        }
      }
    }
    return tokens.size();
  }

  void run_taint_rules() {
    // Fixpoint over return summaries and intra-function taints. Bounded:
    // each round only adds taint bits, and a round with no change stops.
    for (int round = 0; round < 8; ++round) {
      bool changed = false;
      for (const Function& f : ix.functions) {
        changed |= local_pass(f);
      }
      if (!changed) {
        break;
      }
    }
    // Freeze the context-free summaries before argument propagation below
    // starts polluting per-function states.
    summary = taint;
    // Inter-procedural argument propagation: a tainted argument taints the
    // callee's parameter (for sink detection inside helpers), cascading.
    std::deque<int> work;
    for (const Function& f : ix.functions) {
      work.push_back(f.id);
    }
    int budget = static_cast<int>(ix.functions.size()) * 8;
    while (!work.empty() && budget-- > 0) {
      const Function& f = ix.functions[static_cast<std::size_t>(work.front())];
      work.pop_front();
      const FnTaint& state = taint[static_cast<std::size_t>(f.id)];
      for (const CallSite& call : f.calls) {
        if (in_hole(f, call.tok)) {
          continue;
        }
        const auto args = split_args(f, call.tok + 1, '(', ')');
        for (int id : resolve_call(ix, f, call)) {
          const Function& callee = ix.functions[static_cast<std::size_t>(id)];
          bool callee_changed = false;
          for (std::size_t k = 0; k < args.size() && k < callee.params.size(); ++k) {
            if (callee.params[k].empty()) {
              continue;
            }
            const TVal v = eval_range(f, state, args[k].first, args[k].second);
            if (!v.intrinsic) {
              continue;
            }
            TVal& slot = taint[static_cast<std::size_t>(id)].vars[callee.params[k]];
            if (!slot.intrinsic) {
              slot.intrinsic = true;
              slot.origin = v.origin;
              callee_changed = true;
            }
          }
          if (callee_changed && local_pass(callee)) {
            work.push_back(callee.id);
          } else if (callee_changed) {
            work.push_back(callee.id);
          }
        }
      }
    }
    // Sink scan.
    for (const Function& f : ix.functions) {
      scan_sinks(f);
    }
  }

  void sink_hit(const Function& f, int line, const char* rule, const TVal& v,
                const std::string& sink_desc) {
    const Origin origin =
        v.origin.value_or(Origin{"nondeterministic value", f.file, line});
    std::vector<ChainFrame> frames;
    frames.push_back(
        ChainFrame{origin.file, origin.line, "taint source: " + origin.desc});
    frames.push_back(ChainFrame{f.file, line, "reaches " + sink_desc + " in '" +
                                                  f.display() + "'"});
    emit(f, line, rule,
         "value derived from " + origin.desc + " (" + origin.file + ":" +
             std::to_string(origin.line) + ") reaches " + sink_desc +
             "; the schedule must be a pure function of (scenario, seed)",
         "taint-ok", std::move(frames));
  }

  void scan_sinks(const Function& f) {
    const FnTaint& state = taint[static_cast<std::size_t>(f.id)];
    const auto& tokens = toks(f);
    for (const CallSite& call : f.calls) {
      if (in_hole(f, call.tok)) {
        continue;
      }
      const auto args = split_args(f, call.tok + 1, '(', ')');
      auto arg_taint = [&](std::size_t k) -> TVal {
        if (k >= args.size()) {
          return {};
        }
        return eval_range(f, state, args[k].first, args[k].second);
      };
      auto any_arg_taint = [&]() -> TVal {
        TVal v;
        for (std::size_t k = 0; k < args.size(); ++k) {
          v.join(arg_taint(k));
        }
        return v;
      };
      if (call.name == "schedule_at" || call.name == "schedule_after" ||
          call.name == "schedule_on_node") {
        const std::size_t time_arg = call.name == "schedule_on_node" ? 1 : 0;
        const TVal v = arg_taint(time_arg);
        if (v.intrinsic) {
          sink_hit(f, call.line, "T1-taint-schedule-time", v,
                   "the event-schedule time argument of '" + call.name + "'");
        }
        continue;
      }
      if (call.name == "Rng" || call.name == "seed" || call.name == "reseed") {
        const TVal v = any_arg_taint();
        if (v.intrinsic) {
          sink_hit(f, call.line, "T2-taint-rng-seed", v,
                   "an RNG seed ('" + call.name + "')");
        }
        continue;
      }
      if (call.name == "mix" || call.name == "mix64" || call.name == "fate_key") {
        const TVal v = any_arg_taint();
        if (v.intrinsic) {
          sink_hit(f, call.line, "T3-taint-fate-key", v,
                   "a fault-fate hash key ('" + call.name + "')");
        }
        continue;
      }
      if (call.member && (call.name == "instant" || call.name == "async_begin" ||
                          call.name == "async_end" || call.name == "counter")) {
        const TVal v = any_arg_taint();
        if (v.intrinsic) {
          sink_hit(f, call.line, "T4-taint-trace-emit", v,
                   "a trace emission ('" + call.name + "')");
        }
        continue;
      }
    }
    // Constructed RNG declarations: `Rng rng{expr}` and `Rng rng(expr)`
    // record no call site named 'Rng' (the paren form records a call on the
    // variable name instead). A bare `Rng(expr)` temporary IS a 'Rng' call
    // site, so the paren form is only accepted after a declarator name.
    for (std::size_t i = f.body_begin; i < f.body_end && i < tokens.size(); ++i) {
      if (in_hole(f, i) || tokens[i].kind != TokKind::Ident ||
          tokens[i].text != "Rng") {
        continue;
      }
      std::size_t j = i + 1;
      bool named_decl = false;
      if (toks(f)[j].kind == TokKind::Ident) {
        ++j;  // Rng name{...} / Rng name(...)
        named_decl = true;
      }
      char open = 0;
      if (text(f, j) == "{") {
        open = '{';
      } else if (named_decl && text(f, j) == "(") {
        open = '(';
      }
      if (open == 0) {
        continue;
      }
      const auto args = split_args(f, j, open, open == '{' ? '}' : ')');
      TVal v;
      for (const auto& [ab, ae] : args) {
        v.join(eval_range(f, state, ab, ae));
      }
      if (v.intrinsic) {
        sink_hit(f, tokens[i].line, "T2-taint-rng-seed", v, "an RNG seed ('Rng')");
      }
    }
  }
};

}  // namespace

std::vector<Diagnostic> run_semantic(const SymbolIndex& index) {
  Semantic sem{index};
  sem.run_partition_rules();
  sem.run_taint_rules();
  std::sort(sem.diags.begin(), sem.diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) {
                return a.file < b.file;
              }
              if (a.line != b.line) {
                return a.line < b.line;
              }
              if (a.rule != b.rule) {
                return a.rule < b.rule;
              }
              return a.message < b.message;
            });
  sem.diags.erase(std::unique(sem.diags.begin(), sem.diags.end(),
                              [](const Diagnostic& a, const Diagnostic& b) {
                                return a.file == b.file && a.line == b.line &&
                                       a.rule == b.rule && a.message == b.message;
                              }),
                  sem.diags.end());
  return std::move(sem.diags);
}

}  // namespace ampom::lint
