#include "ampom_fuzz/fuzz.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "balancer/cluster_sim.hpp"
#include "balancer/load_balancer.hpp"
#include "driver/scenario.hpp"
#include "simcore/fmt.hpp"
#include "simcore/rng.hpp"
#include "simcore/units.hpp"
#include "verify/invariant_auditor.hpp"
#include "workload/synthetic.hpp"

namespace ampom::fuzz {

namespace {

// Detection calls a peer dead after dead_periods (8) x infod period (250 ms)
// of silence = 2 s. Two generator rules follow from it:
//  - partitions must heal well before 2 s of silence accumulates, or the
//    majority side "reclaims" a migrant that is alive on the minority side;
//  - everything else (crash downtime, campaign spacing) may range freely,
//    because the balancer re-homes both consensus-dead migrants and migrants
//    frozen on a rebooted host.
constexpr std::int64_t kMaxPartitionMs = 1800;

[[nodiscard]] std::int64_t ms_in(sim::Rng& rng, std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(rng.uniform(static_cast<std::uint64_t>(hi - lo + 1)));
}

}  // namespace

FuzzCase generate_case(std::uint64_t seed) {
  sim::Rng rng{seed};
  FuzzCase out;
  out.seed = seed;
  out.nodes = 3 + rng.uniform(5);  // 3..7
  // Drop probability is capped: per-observer heartbeat loss runs of 8
  // periods happen at rate p^8 per window, and a dead-consensus false
  // positive needs them on a majority of observers at once — negligible at
  // 15%, common enough to pollute runs well above ~25%.
  out.drop_pct = rng.bernoulli(0.4) ? 0 : static_cast<std::uint32_t>(1 + rng.uniform(15));

  const std::size_t job_count = 1 + rng.uniform(3);
  for (std::size_t i = 0; i < job_count; ++i) {
    FuzzJob job;
    job.home = 0;
    job.memory_mib = 4 + rng.uniform(5);    // 4..8 MiB
    job.hot_pages = 32 + rng.uniform(97);   // 32..128
    job.touches = 20000 + rng.uniform(40001);
    job.cold_pct = static_cast<std::uint32_t>(2 + rng.uniform(9));
    if (rng.bernoulli(0.85)) {
      // First hop lands inside the campaign window, so freezes race crashes,
      // partitions and flaps. The destination may already be down — that is
      // the abort path, on purpose.
      job.migrate_at = sim::Time::from_ms(ms_in(rng, 1200, 2000));
      job.migrate_dst = static_cast<net::NodeId>(1 + rng.uniform(out.nodes - 1));
    }
    out.jobs.push_back(job);
  }

  // Roughly a third of cases run the cache-aware placement policy over an
  // enabled hierarchy, so CPMD warm-up accounting meets crashes/partitions.
  out.cache_policy = rng.bernoulli(0.3);

  out.chaos.seed = rng.next();
  const std::size_t campaigns = 1 + rng.uniform(3);
  for (std::size_t i = 0; i < campaigns; ++i) {
    switch (rng.uniform(4)) {
      case 0: {
        cluster::CrashWave wave;
        wave.crashes = static_cast<std::uint32_t>(1 + rng.uniform(2));
        wave.start = sim::Time::from_ms(ms_in(rng, 1000, 2500));
        wave.spacing = sim::Time::from_ms(ms_in(rng, 100, 500));
        // Zero downtime (stays down) ~1/4 of the time; otherwise the reboot
        // may beat or lose the 2 s dead threshold — both recovery paths.
        wave.downtime = rng.bernoulli(0.25) ? sim::Time::zero()
                                            : sim::Time::from_ms(ms_in(rng, 1000, 3000));
        wave.spare_node0 = true;  // homes/deputies live on node 0
        out.chaos.crash_waves.push_back(wave);
        break;
      }
      case 1: {
        // Home-side partition: node 0 plus a random subset vs the rest.
        cluster::Partition part;
        part.group_a.push_back(0);
        for (net::NodeId n = 1; n < out.nodes; ++n) {
          if (rng.bernoulli(0.3)) {
            part.group_a.push_back(n);
          }
        }
        const std::int64_t at = ms_in(rng, 1200, 2000);
        part.at = sim::Time::from_ms(at);
        part.heal_at = sim::Time::from_ms(at + ms_in(rng, 500, kMaxPartitionMs));
        out.chaos.partitions.push_back(part);
        break;
      }
      case 2: {
        // Zone outage over non-home nodes, always restored.
        cluster::ZoneOutage zone;
        std::vector<net::NodeId> pool;
        for (net::NodeId n = 1; n < out.nodes; ++n) {
          pool.push_back(n);
        }
        const std::uint64_t victims =
            1 + rng.uniform(std::min<std::uint64_t>(2, pool.size()));
        for (std::uint64_t v = 0; v < victims; ++v) {
          const std::uint64_t pick = rng.uniform(pool.size());
          zone.nodes.push_back(pool[pick]);
          pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
        }
        const std::int64_t at = ms_in(rng, 1000, 2500);
        zone.at = sim::Time::from_ms(at);
        zone.restore_at = sim::Time::from_ms(at + ms_in(rng, 1000, 3000));
        out.chaos.zone_outages.push_back(zone);
        break;
      }
      default: {
        cluster::LinkFlap flap;
        flap.a = 0;
        flap.b = static_cast<net::NodeId>(1 + rng.uniform(out.nodes - 1));
        const std::int64_t start = ms_in(rng, 1000, 1500);
        flap.start = sim::Time::from_ms(start);
        flap.stop = sim::Time::from_ms(start + ms_in(rng, 1000, 2500));
        flap.period = sim::Time::from_ms(ms_in(rng, 100, 300));
        flap.duty = static_cast<double>(25 + rng.uniform(51)) / 100.0;  // 0.25..0.75
        out.chaos.link_flaps.push_back(flap);
        break;
      }
    }
  }
  return out;
}

FuzzResult run_case(const FuzzCase& fuzz_case) {
  FuzzResult result;
  balancer::WorldConfig world_config;
  world_config.scheme = driver::Scheme::Ampom;
  world_config.topology =
      cluster::Topology::flat(std::max<std::size_t>(fuzz_case.nodes, 2));
  world_config.hierarchy.enabled = fuzz_case.cache_policy;
  balancer::ClusterSim world{world_config};
  verify::InvariantAuditor auditor{world};
  balancer::LoadBalancer::Config balancer_config;
  balancer_config.period = sim::Time::from_ms(250);
  // Pure failure handler: an absurd threshold disables load-driven moves, so
  // the only migrations are the scripted ones and the only rehomes are
  // reclaim_stranded's — the shape the invariants reason about.
  balancer_config.imbalance_threshold = 1e9;
  if (fuzz_case.cache_policy) {
    balancer_config.placement = driver::Placement::kCacheAware;
  }
  balancer::LoadBalancer balancer{world, balancer_config};

  try {
    driver::ReliabilityConfig reliability = driver::ReliabilityConfig::all_on();
    reliability.migration.mutate_skip_abort_rollback = fuzz_case.mutate_skip_abort_rollback;
    world.set_reliability(reliability);
    world.enable_recovery_tracking();

    driver::FaultPlan plan;
    plan.seed = fuzz_case.seed;
    plan.default_faults.drop_probability = static_cast<double>(fuzz_case.drop_pct) / 100.0;
    plan.chaos = fuzz_case.chaos;
    world.set_fault_plan(plan);

    std::vector<balancer::ProcessHost*> hosts;
    for (std::size_t i = 0; i < fuzz_case.jobs.size(); ++i) {
      const FuzzJob& job = fuzz_case.jobs[i];
      balancer::JobSpec spec;
      spec.label = sim::strfmt("fuzz-job%zu", i);
      spec.home = job.home;
      spec.start = sim::Time::from_ms(1000) + sim::Time::from_ms(50) * static_cast<std::int64_t>(i);
      const std::uint64_t workload_seed = fuzz_case.seed + 0x9E3779B97F4A7C15ULL * (i + 1);
      spec.make_workload = [job, workload_seed] {
        return std::make_unique<workload::HotColdStream>(
            job.memory_mib * sim::kMiB, job.hot_pages, job.touches,
            static_cast<double>(job.cold_pct) / 100.0, sim::Time::from_us(100), workload_seed);
      };
      hosts.push_back(&world.spawn(std::move(spec)));
    }

    for (std::size_t i = 0; i < fuzz_case.jobs.size(); ++i) {
      const FuzzJob& job = fuzz_case.jobs[i];
      if (job.migrate_at <= sim::Time::zero()) {
        continue;
      }
      balancer::ProcessHost* host = hosts[i];
      world.simulator().schedule_at(job.migrate_at, [host, dst = job.migrate_dst] {
        // Only the scripted first hop; if the process already bounced through
        // a recovery, leave placement to the failure handler.
        if (host->migratable() && host->current_node() == host->home_node()) {
          host->migrate_to(dst);
        }
      });
    }

    balancer.start();
    result.finished = world.run_until(fuzz_case.deadline);
    if (!result.finished) {
      result.ok = false;
      result.failure = sim::strfmt(
          "livelock: %llu ms deadline passed with unfinished processes",
          static_cast<unsigned long long>(fuzz_case.deadline.ns() / 1'000'000));
    }
  } catch (const std::exception& error) {
    result.ok = false;
    result.finished = false;
    result.failure = error.what();
  }

  result.trail = auditor.trail();
  result.violations = auditor.violations();
  result.crashes = world.recovery_stats().crashes;
  result.rehomes = world.recovery_stats().rehomes;
  result.heals = world.recovery_stats().heals;
  return result;
}

namespace {

// True iff the candidate still fails — the shrinker's acceptance test.
[[nodiscard]] bool still_fails(const FuzzCase& candidate, ShrinkStats* stats) {
  if (stats != nullptr) {
    ++stats->attempts;
  }
  const bool failed = !run_case(candidate).ok;
  if (failed && stats != nullptr) {
    ++stats->accepted;
  }
  return failed;
}

// Largest node id any job or campaign references (0 if none).
[[nodiscard]] net::NodeId max_referenced_node(const FuzzCase& fuzz_case) {
  net::NodeId max_node = 0;
  for (const FuzzJob& job : fuzz_case.jobs) {
    max_node = std::max(max_node, std::max(job.home, job.migrate_dst));
  }
  for (const cluster::ZoneOutage& zone : fuzz_case.chaos.zone_outages) {
    for (const net::NodeId n : zone.nodes) {
      max_node = std::max(max_node, n);
    }
  }
  for (const cluster::Partition& part : fuzz_case.chaos.partitions) {
    for (const net::NodeId n : part.group_a) {
      max_node = std::max(max_node, n);
    }
  }
  for (const cluster::LinkFlap& flap : fuzz_case.chaos.link_flaps) {
    max_node = std::max(max_node, std::max(flap.a, flap.b));
  }
  return max_node;
}

// Try removing one campaign at a time (every kind, every index); returns
// true if any removal kept the failure.
bool shrink_campaigns(FuzzCase& best, ShrinkStats* stats) {
  bool improved = false;
  const auto try_erase = [&](auto cluster::ChaosPlan::* member) {
    for (std::size_t i = 0; i < (best.chaos.*member).size();) {
      FuzzCase candidate = best;
      auto& vec = candidate.chaos.*member;
      vec.erase(vec.begin() + static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate, stats)) {
        best = std::move(candidate);
        improved = true;  // same index now names the next element
      } else {
        ++i;
      }
    }
  };
  try_erase(&cluster::ChaosPlan::zone_outages);
  try_erase(&cluster::ChaosPlan::partitions);
  try_erase(&cluster::ChaosPlan::crash_waves);
  try_erase(&cluster::ChaosPlan::link_flaps);
  return improved;
}

}  // namespace

FuzzCase shrink_case(const FuzzCase& failing, ShrinkStats* stats) {
  FuzzCase best = failing;
  bool improved = true;
  while (improved) {
    improved = false;

    improved |= shrink_campaigns(best, stats);

    if (best.drop_pct > 0) {
      FuzzCase candidate = best;
      candidate.drop_pct = 0;
      if (still_fails(candidate, stats)) {
        best = std::move(candidate);
        improved = true;
      }
    }

    for (std::size_t i = 0; i < best.jobs.size() && best.jobs.size() > 1;) {
      FuzzCase candidate = best;
      candidate.jobs.erase(candidate.jobs.begin() + static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate, stats)) {
        best = std::move(candidate);
        improved = true;
      } else {
        ++i;
      }
    }

    while (best.nodes > 2 && best.nodes - 1 > max_referenced_node(best)) {
      FuzzCase candidate = best;
      --candidate.nodes;
      if (!still_fails(candidate, stats)) {
        break;
      }
      best = std::move(candidate);
      improved = true;
    }

    for (std::size_t i = 0; i < best.jobs.size(); ++i) {
      while (best.jobs[i].touches / 2 >= 5000) {
        FuzzCase candidate = best;
        candidate.jobs[i].touches /= 2;
        if (!still_fails(candidate, stats)) {
          break;
        }
        best = std::move(candidate);
        improved = true;
      }
      while (best.jobs[i].hot_pages / 2 >= 16) {
        FuzzCase candidate = best;
        candidate.jobs[i].hot_pages /= 2;
        if (!still_fails(candidate, stats)) {
          break;
        }
        best = std::move(candidate);
        improved = true;
      }
    }

    for (std::size_t i = 0; i < best.chaos.crash_waves.size(); ++i) {
      while (best.chaos.crash_waves[i].crashes > 1) {
        FuzzCase candidate = best;
        --candidate.chaos.crash_waves[i].crashes;
        if (!still_fails(candidate, stats)) {
          break;
        }
        best = std::move(candidate);
        improved = true;
      }
    }
  }
  return best;
}

namespace {

[[nodiscard]] std::int64_t whole_ms(sim::Time t) { return t.ns() / 1'000'000; }

[[nodiscard]] std::string join_nodes(const std::vector<net::NodeId>& nodes) {
  std::string out;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += sim::strfmt("%u", nodes[i]);
  }
  return out;
}

}  // namespace

std::string serialize_case(const FuzzCase& fuzz_case) {
  std::string out = "# ampom_fuzz repro v1\n";
  out += sim::strfmt("seed %llu\n", static_cast<unsigned long long>(fuzz_case.seed));
  out += sim::strfmt("nodes %zu\n", fuzz_case.nodes);
  out += sim::strfmt("drop_pct %u\n", fuzz_case.drop_pct);
  out += sim::strfmt("deadline_ms %lld\n", static_cast<long long>(whole_ms(fuzz_case.deadline)));
  out += sim::strfmt("mutate %d\n", fuzz_case.mutate_skip_abort_rollback ? 1 : 0);
  out += sim::strfmt("cache_policy %d\n", fuzz_case.cache_policy ? 1 : 0);
  out += sim::strfmt("chaos_seed %llu\n", static_cast<unsigned long long>(fuzz_case.chaos.seed));
  for (const FuzzJob& job : fuzz_case.jobs) {
    out += sim::strfmt(
        "job home=%u memory_mib=%llu hot_pages=%llu touches=%llu cold_pct=%u "
        "migrate_at_ms=%lld migrate_dst=%u\n",
        job.home, static_cast<unsigned long long>(job.memory_mib),
        static_cast<unsigned long long>(job.hot_pages),
        static_cast<unsigned long long>(job.touches), job.cold_pct,
        static_cast<long long>(whole_ms(job.migrate_at)), job.migrate_dst);
  }
  for (const cluster::ZoneOutage& zone : fuzz_case.chaos.zone_outages) {
    out += sim::strfmt("zone at_ms=%lld restore_ms=%lld nodes=%s\n",
                       static_cast<long long>(whole_ms(zone.at)),
                       static_cast<long long>(whole_ms(zone.restore_at)),
                       join_nodes(zone.nodes).c_str());
  }
  for (const cluster::Partition& part : fuzz_case.chaos.partitions) {
    out += sim::strfmt("partition at_ms=%lld heal_ms=%lld group=%s\n",
                       static_cast<long long>(whole_ms(part.at)),
                       static_cast<long long>(whole_ms(part.heal_at)),
                       join_nodes(part.group_a).c_str());
  }
  for (const cluster::CrashWave& wave : fuzz_case.chaos.crash_waves) {
    out += sim::strfmt("wave crashes=%u start_ms=%lld spacing_ms=%lld downtime_ms=%lld spare0=%d\n",
                       wave.crashes, static_cast<long long>(whole_ms(wave.start)),
                       static_cast<long long>(whole_ms(wave.spacing)),
                       static_cast<long long>(whole_ms(wave.downtime)),
                       wave.spare_node0 ? 1 : 0);
  }
  for (const cluster::LinkFlap& flap : fuzz_case.chaos.link_flaps) {
    out += sim::strfmt("flap a=%u b=%u start_ms=%lld stop_ms=%lld period_ms=%lld duty=%.17g\n",
                       flap.a, flap.b, static_cast<long long>(whole_ms(flap.start)),
                       static_cast<long long>(whole_ms(flap.stop)),
                       static_cast<long long>(whole_ms(flap.period)), flap.duty);
  }
  return out;
}

namespace {

[[noreturn]] void bad_repro(const std::string& why) {
  throw std::invalid_argument("ampom_fuzz repro: " + why);
}

// Splits "key=value" (throws without '='); empty values are allowed.
[[nodiscard]] std::pair<std::string, std::string> split_kv(const std::string& token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) {
    bad_repro("expected key=value, got '" + token + "'");
  }
  return {token.substr(0, eq), token.substr(eq + 1)};
}

[[nodiscard]] std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
      ++i;
    }
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') {
      ++i;
    }
    if (i > start) {
      out.push_back(line.substr(start, i - start));
    }
  }
  return out;
}

[[nodiscard]] std::uint64_t parse_u64(const std::string& text) {
  if (text.empty()) {
    bad_repro("empty number");
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      bad_repro("bad number '" + text + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

[[nodiscard]] sim::Time parse_ms(const std::string& text) {
  return sim::Time::from_ms(static_cast<std::int64_t>(parse_u64(text)));
}

[[nodiscard]] double parse_double(const std::string& text) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) {
      bad_repro("bad real '" + text + "'");
    }
    return value;
  } catch (const std::invalid_argument&) {
    bad_repro("bad real '" + text + "'");
  } catch (const std::out_of_range&) {
    bad_repro("bad real '" + text + "'");
  }
}

[[nodiscard]] std::vector<net::NodeId> parse_node_list(const std::string& text) {
  std::vector<net::NodeId> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string piece =
        text.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    out.push_back(static_cast<net::NodeId>(parse_u64(piece)));
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

}  // namespace

FuzzCase parse_case(const std::string& text) {
  FuzzCase out;
  out.jobs.clear();
  bool saw_header = false;
  bool saw_seed = false;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      if (line == "# ampom_fuzz repro v1") {
        saw_header = true;
      }
      continue;
    }
    if (!saw_header) {
      bad_repro("missing '# ampom_fuzz repro v1' header");
    }
    const std::vector<std::string> tokens = split_ws(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& kind = tokens[0];
    const auto scalar = [&](const char* name) -> const std::string& {
      if (tokens.size() != 2) {
        bad_repro(std::string{name} + " needs exactly one value");
      }
      return tokens[1];
    };
    if (kind == "seed") {
      out.seed = parse_u64(scalar("seed"));
      saw_seed = true;
    } else if (kind == "nodes") {
      out.nodes = parse_u64(scalar("nodes"));
    } else if (kind == "drop_pct") {
      out.drop_pct = static_cast<std::uint32_t>(parse_u64(scalar("drop_pct")));
    } else if (kind == "deadline_ms") {
      out.deadline = parse_ms(scalar("deadline_ms"));
    } else if (kind == "mutate") {
      out.mutate_skip_abort_rollback = parse_u64(scalar("mutate")) != 0;
    } else if (kind == "cache_policy") {
      out.cache_policy = parse_u64(scalar("cache_policy")) != 0;
    } else if (kind == "chaos_seed") {
      out.chaos.seed = parse_u64(scalar("chaos_seed"));
    } else {
      // Record lines: every remaining token is key=value.
      FuzzJob job;
      cluster::ZoneOutage zone;
      cluster::Partition part;
      cluster::CrashWave wave;
      cluster::LinkFlap flap;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto [key, value] = split_kv(tokens[i]);
        if (kind == "job") {
          if (key == "home") {
            job.home = static_cast<net::NodeId>(parse_u64(value));
          } else if (key == "memory_mib") {
            job.memory_mib = parse_u64(value);
          } else if (key == "hot_pages") {
            job.hot_pages = parse_u64(value);
          } else if (key == "touches") {
            job.touches = parse_u64(value);
          } else if (key == "cold_pct") {
            job.cold_pct = static_cast<std::uint32_t>(parse_u64(value));
          } else if (key == "migrate_at_ms") {
            job.migrate_at = parse_ms(value);
          } else if (key == "migrate_dst") {
            job.migrate_dst = static_cast<net::NodeId>(parse_u64(value));
          } else {
            bad_repro("unknown job key '" + key + "'");
          }
        } else if (kind == "zone") {
          if (key == "at_ms") {
            zone.at = parse_ms(value);
          } else if (key == "restore_ms") {
            zone.restore_at = parse_ms(value);
          } else if (key == "nodes") {
            zone.nodes = parse_node_list(value);
          } else {
            bad_repro("unknown zone key '" + key + "'");
          }
        } else if (kind == "partition") {
          if (key == "at_ms") {
            part.at = parse_ms(value);
          } else if (key == "heal_ms") {
            part.heal_at = parse_ms(value);
          } else if (key == "group") {
            part.group_a = parse_node_list(value);
          } else {
            bad_repro("unknown partition key '" + key + "'");
          }
        } else if (kind == "wave") {
          if (key == "crashes") {
            wave.crashes = static_cast<std::uint32_t>(parse_u64(value));
          } else if (key == "start_ms") {
            wave.start = parse_ms(value);
          } else if (key == "spacing_ms") {
            wave.spacing = parse_ms(value);
          } else if (key == "downtime_ms") {
            wave.downtime = parse_ms(value);
          } else if (key == "spare0") {
            wave.spare_node0 = parse_u64(value) != 0;
          } else {
            bad_repro("unknown wave key '" + key + "'");
          }
        } else if (kind == "flap") {
          if (key == "a") {
            flap.a = static_cast<net::NodeId>(parse_u64(value));
          } else if (key == "b") {
            flap.b = static_cast<net::NodeId>(parse_u64(value));
          } else if (key == "start_ms") {
            flap.start = parse_ms(value);
          } else if (key == "stop_ms") {
            flap.stop = parse_ms(value);
          } else if (key == "period_ms") {
            flap.period = parse_ms(value);
          } else if (key == "duty") {
            flap.duty = parse_double(value);
          } else {
            bad_repro("unknown flap key '" + key + "'");
          }
        } else {
          bad_repro("unknown record '" + kind + "'");
        }
      }
      if (kind == "job") {
        out.jobs.push_back(job);
      } else if (kind == "zone") {
        out.chaos.zone_outages.push_back(zone);
      } else if (kind == "partition") {
        out.chaos.partitions.push_back(part);
      } else if (kind == "wave") {
        out.chaos.crash_waves.push_back(wave);
      } else if (kind == "flap") {
        out.chaos.link_flaps.push_back(flap);
      } else {
        bad_repro("unknown record '" + kind + "'");
      }
    }
  }
  if (!saw_header) {
    bad_repro("missing '# ampom_fuzz repro v1' header");
  }
  if (!saw_seed) {
    bad_repro("missing 'seed' line");
  }
  if (out.nodes < 2) {
    bad_repro("nodes must be at least 2");
  }
  if (out.jobs.empty()) {
    bad_repro("at least one job line required");
  }
  return out;
}

}  // namespace ampom::fuzz
