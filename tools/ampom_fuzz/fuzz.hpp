#pragma once
// ampom_fuzz: randomized chaos-scenario fuzzing with automatic shrinking.
//
// The fuzzer samples cluster topologies, workload mixes and chaos campaigns
// through the same declarative surface the builder exposes (ChaosPlan /
// FaultPlan), runs each case in a ClusterSim under the InvariantAuditor,
// and treats three things as failure: an invariant violation, any other
// exception out of the run, and a run that misses its deadline (livelock).
// A failing case is then delta-debugged — campaigns dropped, probabilistic
// loss zeroed, jobs removed, nodes and workload sizes reduced — to the
// smallest case that still fails, which serializes to a standalone repro
// file any future session can replay with `ampom_fuzz --repro=FILE`.
//
// Everything is pure function of the case: generate_case(seed) is
// deterministic, run_case builds a private ClusterSim, and the repro format
// round-trips exactly (times are whole milliseconds by construction).

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/chaos.hpp"
#include "simcore/time.hpp"

namespace ampom::fuzz {

// One process in the scenario. Homes are always node 0 and node 0 is never
// crashed by generated campaigns: a dead home kills deputy and ledger with
// no recovery protocol in the model, so "home survives" is a precondition,
// not a property under test.
struct FuzzJob {
  net::NodeId home{0};
  std::uint64_t memory_mib{4};
  std::uint64_t hot_pages{128};
  std::uint64_t touches{40000};
  std::uint32_t cold_pct{5};  // percent of touches going to cold pages
  // Scripted first-hop migration (zero = none). Guarded at fire time: only
  // taken if the process is still at home and migratable.
  sim::Time migrate_at{};
  net::NodeId migrate_dst{0};
};

struct FuzzCase {
  std::uint64_t seed{1};
  std::size_t nodes{4};
  std::uint32_t drop_pct{0};  // per-message drop probability, percent
  std::vector<FuzzJob> jobs;
  cluster::ChaosPlan chaos;
  sim::Time deadline{sim::Time::from_sec(30)};
  // Verification self-test: reintroduce the skipped abort rollback
  // (MigrationReliability::mutate_skip_abort_rollback).
  bool mutate_skip_abort_rollback{false};
  // Run with the memory-hierarchy model on and the balancer scoring
  // destinations cache-aware (Placement::kCacheAware) so CPMD charges and
  // pressure-driven picks are exercised under chaos too.
  bool cache_policy{false};

  [[nodiscard]] std::size_t fault_count() const {
    return cluster::expand_chaos(chaos, nodes).fault_count();
  }
};

struct FuzzResult {
  bool ok{true};
  bool finished{true};      // false: deadline passed with processes unfinished
  std::string failure;      // violation / exception text when !ok
  std::string trail;        // auditor audit trail when !ok
  std::uint64_t violations{0};
  std::uint64_t crashes{0};  // recovery stats, for campaign summaries
  std::uint64_t rehomes{0};
  std::uint64_t heals{0};
};

// Deterministic scenario sampler: same seed, same case.
[[nodiscard]] FuzzCase generate_case(std::uint64_t seed);

// Build the world (AMPoM scheme, reliability all_on, recovery tracking,
// balancer as pure failure handler), run under the auditor, classify.
[[nodiscard]] FuzzResult run_case(const FuzzCase& fuzz_case);

struct ShrinkStats {
  std::size_t attempts{0};  // candidate runs tried
  std::size_t accepted{0};  // candidates that still failed (reductions kept)
};

// Greedy ddmin-style fixpoint: try one reduction at a time, keep it iff the
// reduced case still fails, repeat until no reduction survives.
[[nodiscard]] FuzzCase shrink_case(const FuzzCase& failing, ShrinkStats* stats = nullptr);

// Standalone repro text ("# ampom_fuzz repro v1"); parse_case throws
// std::invalid_argument on malformed input. parse(serialize(c)) == c.
[[nodiscard]] std::string serialize_case(const FuzzCase& fuzz_case);
[[nodiscard]] FuzzCase parse_case(const std::string& text);

}  // namespace ampom::fuzz
