// ampom_fuzz CLI — randomized chaos campaigns under the invariant auditor,
// with delta-debugging of failing seeds down to standalone repro files.
// Exit codes: 0 all seeds clean (or repro confirmed fixed), 1 a failure was
// found (or the repro still fails), 2 internal error (bad arguments,
// unreadable repro), so CI can distinguish "bug found" from "broken run".
//
//   ampom_fuzz [--seeds=N] [--start=S] [--jobs=J] [--shrink]
//              [--mutate=skip_abort_rollback] [--out=FILE]
//   ampom_fuzz --repro=FILE [--shrink] [--out=FILE]
//
// Fuzz mode runs seeds S..S+N-1 in parallel; the first failing seed (lowest,
// for determinism across --jobs) is optionally shrunk and written to FILE
// ("ampom_fuzz_repro.txt") with the failure and audit trail beside it in
// FILE.trail. Repro mode replays one file instead.

#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "ampom_fuzz/fuzz.hpp"
#include "driver/sweep_executor.hpp"

namespace {

struct Options {
  std::uint64_t seeds{100};
  std::uint64_t start{1};
  std::size_t jobs{0};  // 0 = hardware threads
  bool shrink{false};
  bool mutate{false};
  std::string repro_path;
  std::string out_path{"ampom_fuzz_repro.txt"};
};

[[nodiscard]] bool parse_args(int argc, char** argv, Options& options, std::string& problem) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--seeds=", 0) == 0) {
      options.seeds = std::strtoull(value_of("--seeds=").c_str(), nullptr, 10);
    } else if (arg.rfind("--start=", 0) == 0) {
      options.start = std::strtoull(value_of("--start=").c_str(), nullptr, 10);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = std::strtoull(value_of("--jobs=").c_str(), nullptr, 10);
    } else if (arg == "--shrink") {
      options.shrink = true;
    } else if (arg.rfind("--mutate=", 0) == 0) {
      const std::string which = value_of("--mutate=");
      if (which != "skip_abort_rollback") {
        problem = "unknown mutation '" + which + "' (supported: skip_abort_rollback)";
        return false;
      }
      options.mutate = true;
    } else if (arg.rfind("--repro=", 0) == 0) {
      options.repro_path = value_of("--repro=");
    } else if (arg.rfind("--out=", 0) == 0) {
      options.out_path = value_of("--out=");
    } else {
      problem = "unknown argument '" + arg + "'";
      return false;
    }
  }
  if (options.repro_path.empty() && options.seeds == 0) {
    problem = "--seeds must be positive";
    return false;
  }
  return true;
}

// Writes the repro and its failure context; reports what it wrote.
void emit_repro(const Options& options, const ampom::fuzz::FuzzCase& fuzz_case,
                const ampom::fuzz::FuzzResult& result) {
  {
    std::ofstream out{options.out_path};
    out << ampom::fuzz::serialize_case(fuzz_case);
  }
  {
    std::ofstream trail{options.out_path + ".trail"};
    trail << "failure: " << result.failure << "\n\n" << result.trail << "\n";
  }
  std::cout << "repro written to " << options.out_path << " (+ .trail)\n";
}

int run_repro(const Options& options) {
  std::ifstream in{options.repro_path};
  if (!in) {
    std::cerr << "ampom_fuzz: cannot read " << options.repro_path << "\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  ampom::fuzz::FuzzCase fuzz_case = ampom::fuzz::parse_case(text.str());
  fuzz_case.mutate_skip_abort_rollback |= options.mutate;
  ampom::fuzz::FuzzResult result = ampom::fuzz::run_case(fuzz_case);
  if (result.ok) {
    std::cout << "repro passed: " << options.repro_path << "\n";
    return 0;
  }
  std::cout << "repro still fails: " << result.failure << "\n";
  if (options.shrink) {
    ampom::fuzz::ShrinkStats stats;
    fuzz_case = ampom::fuzz::shrink_case(fuzz_case, &stats);
    result = ampom::fuzz::run_case(fuzz_case);
    std::cout << "shrunk to " << fuzz_case.nodes << " nodes, " << fuzz_case.jobs.size()
              << " jobs, " << fuzz_case.fault_count() << " faults (" << stats.attempts
              << " attempts, " << stats.accepted << " reductions)\n";
    emit_repro(options, fuzz_case, result);
  }
  return 1;
}

int run_fuzz(const Options& options) {
  std::mutex mutex;
  std::uint64_t first_failing_seed = 0;
  bool any_failure = false;
  std::string first_failure_text;
  std::uint64_t completed = 0;

  ampom::driver::SweepExecutor::parallel_for(
      options.jobs == 0 ? 0 : options.jobs, options.seeds, [&](std::size_t index) {
        const std::uint64_t seed = options.start + index;
        std::string failure;
        bool ok = true;
        try {
          ampom::fuzz::FuzzCase fuzz_case = ampom::fuzz::generate_case(seed);
          fuzz_case.mutate_skip_abort_rollback = options.mutate;
          const ampom::fuzz::FuzzResult result = ampom::fuzz::run_case(fuzz_case);
          ok = result.ok;
          failure = result.failure;
        } catch (const std::exception& error) {
          ok = false;
          failure = error.what();
        } catch (...) {
          ok = false;
          failure = "non-standard exception";
        }
        const std::lock_guard<std::mutex> lock{mutex};
        ++completed;
        if (!ok && (!any_failure || seed < first_failing_seed)) {
          any_failure = true;
          first_failing_seed = seed;
          first_failure_text = failure;
        }
      });

  std::cout << completed << " seeds run (" << options.start << ".."
            << options.start + options.seeds - 1 << ")"
            << (options.mutate ? " with mutate=skip_abort_rollback" : "") << "\n";
  if (!any_failure) {
    std::cout << "no failures\n";
    return 0;
  }

  std::cout << "seed " << first_failing_seed << " fails: " << first_failure_text << "\n";
  ampom::fuzz::FuzzCase fuzz_case = ampom::fuzz::generate_case(first_failing_seed);
  fuzz_case.mutate_skip_abort_rollback = options.mutate;
  if (options.shrink) {
    ampom::fuzz::ShrinkStats stats;
    fuzz_case = ampom::fuzz::shrink_case(fuzz_case, &stats);
    std::cout << "shrunk to " << fuzz_case.nodes << " nodes, " << fuzz_case.jobs.size()
              << " jobs, " << fuzz_case.fault_count() << " faults (" << stats.attempts
              << " attempts, " << stats.accepted << " reductions)\n";
  }
  emit_repro(options, fuzz_case, ampom::fuzz::run_case(fuzz_case));
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::string problem;
  if (!parse_args(argc, argv, options, problem)) {
    std::cerr << "ampom_fuzz: " << problem << "\n";
    return 2;
  }
  try {
    return options.repro_path.empty() ? run_fuzz(options) : run_repro(options);
  } catch (const std::exception& error) {
    std::cerr << "ampom_fuzz: " << error.what() << "\n";
    return 2;
  }
}
