#include "perf_gate/gate.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace ampom::perfgate {
namespace {

// ---------------------------------------------------------------------------
// JSON parsing: recursive descent over the subset the two schemas use.
// ---------------------------------------------------------------------------

class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  std::optional<JsonValue> parse() {
    skip_ws();
    JsonValue value;
    if (!parse_value(value)) {
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after document");
    }
    return value;
  }

 private:
  std::optional<JsonValue> fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = what + " at byte " + std::to_string(pos_);
    }
    return std::nullopt;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool expect(char c) {
    if (at_end() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
      return false;
    }
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (at_end()) {
      fail("unexpected end of input");
      return false;
    }
    switch (peek()) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::String;
        return parse_string(out.string);
      case 't':
      case 'f':
        return parse_bool(out);
      case 'n':
        return parse_literal("null") && (out.kind = JsonValue::Kind::Null, true);
      default:
        return parse_number(out);
    }
  }

  bool parse_literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (at_end() || text_[pos_] != *p) {
        fail(std::string("expected '") + word + "'");
        return false;
      }
      ++pos_;
    }
    return true;
  }

  bool parse_bool(JsonValue& out) {
    out.kind = JsonValue::Kind::Bool;
    if (peek() == 't') {
      out.boolean = true;
      return parse_literal("true");
    }
    out.boolean = false;
    return parse_literal("false");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    while (!at_end()) {
      const char c = peek();
      const bool number_char = (c >= '0' && c <= '9') || c == '-' || c == '+' ||
                               c == '.' || c == 'e' || c == 'E';
      if (!number_char) {
        break;
      }
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
      return false;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("malformed number '" + token + "'");
      return false;
    }
    out.kind = JsonValue::Kind::Number;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) {
      return false;
    }
    out.clear();
    while (!at_end()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // The schemas are ASCII; decode BMP escapes in range, '?' otherwise.
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end == nullptr || *end != '\0') {
            fail("malformed \\u escape");
            return false;
          }
          out += (code >= 0x20 && code < 0x7F) ? static_cast<char>(code) : '?';
          break;
        }
        default:
          fail("unknown escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    if (!expect('[')) {
      return false;
    }
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      skip_ws();
      if (!parse_value(element)) {
        return false;
      }
      out.array.push_back(std::move(element));
      skip_ws();
      if (at_end()) {
        fail("unterminated array");
        return false;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return expect(']');
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    if (!expect('{')) {
      return false;
    }
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) {
        return false;
      }
      skip_ws();
      if (!expect(':')) {
        return false;
      }
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) {
        return false;
      }
      out.object.insert_or_assign(std::move(key), std::move(value));
      skip_ws();
      if (at_end()) {
        fail("unterminated object");
        return false;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return expect('}');
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_{0};
};

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

// Exact rendering for counters compared with ==; "%.6g" would round a
// 4013614-vs-4013613 drift into two identical-looking strings.
std::string fmt_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  std::string out = buf;
  if (out.find('.') != std::string::npos && out.find('e') == std::string::npos) {
    out.erase(out.find_last_not_of('0') + 1);
    if (!out.empty() && out.back() == '.') {
      out.pop_back();
    }
  }
  return out;
}

// The three engine profiles and their benchmark-name stems in micro_simcore.
struct ProfileName {
  const char* key;
  const char* bench_stem;
};
constexpr ProfileName kProfiles[] = {
    {"schedule_heavy", "BM_ScheduleHeavy"},
    {"cancel_heavy", "BM_CancelHeavy"},
    {"mixed", "BM_Mixed"},
};

const JsonValue* find_benchmark(const JsonValue& benchmarks, const std::string& name) {
  for (const JsonValue& entry : benchmarks.array) {
    const JsonValue* n = entry.find("name");
    if (n != nullptr && n->kind == JsonValue::Kind::String && n->string == name) {
      return &entry;
    }
  }
  return nullptr;
}

bool read_metric(const JsonValue& bench, const char* counter, double& out,
                 const std::string& bench_name, std::string* error) {
  const JsonValue* v = bench.find(counter);
  if (v == nullptr || v->kind != JsonValue::Kind::Number) {
    if (error != nullptr) {
      *error = bench_name + ": counter '" + counter + "' missing from benchmark output";
    }
    return false;
  }
  out = v->number;
  return true;
}

bool read_metrics(const JsonValue& benchmarks, const std::string& bench_name,
                  ProfileMetrics& out, std::string* error) {
  const JsonValue* bench = find_benchmark(benchmarks, bench_name);
  if (bench == nullptr) {
    if (error != nullptr) {
      *error = "benchmark '" + bench_name + "' not found in raw output";
    }
    return false;
  }
  return read_metric(*bench, "events_per_sec", out.events_per_sec, bench_name, error) &&
         read_metric(*bench, "allocs_per_op", out.allocs_per_op, bench_name, error) &&
         read_metric(*bench, "peak_queued", out.peak_queued, bench_name, error);
}

bool load_metrics(const JsonValue& profile, const char* engine, ProfileMetrics& out,
                  const std::string& profile_name, std::string* error) {
  const JsonValue* obj = profile.find(engine);
  if (obj == nullptr || obj->kind != JsonValue::Kind::Object) {
    if (error != nullptr) {
      *error = "profile '" + profile_name + "' is missing the '" + engine + "' object";
    }
    return false;
  }
  return read_metric(*obj, "events_per_sec", out.events_per_sec, profile_name, error) &&
         read_metric(*obj, "allocs_per_op", out.allocs_per_op, profile_name, error) &&
         read_metric(*obj, "peak_queued", out.peak_queued, profile_name, error);
}

void render_metrics(std::string& out, const char* indent, const ProfileMetrics& m) {
  out += indent;
  out += "{\"events_per_sec\": " + fmt(m.events_per_sec);
  out += ", \"allocs_per_op\": " + fmt(m.allocs_per_op);
  out += ", \"peak_queued\": " + fmt(m.peak_queued) + "}";
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::Object) {
    return nullptr;
  }
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

std::optional<JsonValue> parse_json(const std::string& text, std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  return Parser{text, error}.parse();
}

std::optional<Summary> summarize_raw(const JsonValue& raw, std::string* error) {
  const JsonValue* benchmarks = raw.find("benchmarks");
  if (benchmarks == nullptr || benchmarks->kind != JsonValue::Kind::Array) {
    if (error != nullptr) {
      *error = "raw output has no 'benchmarks' array";
    }
    return std::nullopt;
  }
  Summary summary;
  for (const ProfileName& p : kProfiles) {
    EngineProfile profile;
    const std::string stem{p.bench_stem};
    if (!read_metrics(*benchmarks, stem + "_Indexed", profile.indexed, error) ||
        !read_metrics(*benchmarks, stem + "_Lazy", profile.lazy, error)) {
      return std::nullopt;
    }
    if (profile.lazy.events_per_sec <= 0.0) {
      if (error != nullptr) {
        *error = stem + "_Lazy reports a non-positive events_per_sec";
      }
      return std::nullopt;
    }
    profile.speedup_vs_lazy = profile.indexed.events_per_sec / profile.lazy.events_per_sec;
    summary.profiles.emplace(p.key, std::move(profile));
  }
  return summary;
}

std::string render_summary(const Summary& summary) {
  std::string out = "{\n  \"schema\": 1,\n  \"tool\": \"perf_gate\",\n  \"profiles\": {\n";
  std::size_t i = 0;
  for (const auto& [name, profile] : summary.profiles) {
    out += "    \"" + name + "\": {\n";
    out += "      \"indexed\": ";
    render_metrics(out, "", profile.indexed);
    out += ",\n      \"lazy\": ";
    render_metrics(out, "", profile.lazy);
    out += ",\n      \"speedup_vs_lazy\": " + fmt(profile.speedup_vs_lazy) + "\n    }";
    out += (++i < summary.profiles.size()) ? ",\n" : "\n";
  }
  out += "  }\n}\n";
  return out;
}

std::optional<Summary> load_summary(const JsonValue& doc, std::string* error) {
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::Number ||
      schema->number != 1.0) {
    if (error != nullptr) {
      *error = "baseline is missing \"schema\": 1";
    }
    return std::nullopt;
  }
  const JsonValue* profiles = doc.find("profiles");
  if (profiles == nullptr || profiles->kind != JsonValue::Kind::Object) {
    if (error != nullptr) {
      *error = "baseline has no 'profiles' object";
    }
    return std::nullopt;
  }
  Summary summary;
  for (const auto& [name, value] : profiles->object) {
    EngineProfile profile;
    if (!load_metrics(value, "indexed", profile.indexed, name, error) ||
        !load_metrics(value, "lazy", profile.lazy, name, error)) {
      return std::nullopt;
    }
    const JsonValue* speedup = value.find("speedup_vs_lazy");
    if (speedup == nullptr || speedup->kind != JsonValue::Kind::Number) {
      if (error != nullptr) {
        *error = "profile '" + name + "' is missing speedup_vs_lazy";
      }
      return std::nullopt;
    }
    profile.speedup_vs_lazy = speedup->number;
    summary.profiles.emplace(name, std::move(profile));
  }
  return summary;
}

GateResult gate(const Summary& current, const Summary* baseline,
                const GateOptions& options) {
  GateResult result;
  auto fail = [&result](std::string message) {
    result.pass = false;
    result.failures.push_back(std::move(message));
  };

  for (const auto& [name, profile] : current.profiles) {
    result.notes.push_back(name + ": indexed " + fmt(profile.indexed.events_per_sec) +
                           " ev/s, lazy " + fmt(profile.lazy.events_per_sec) +
                           " ev/s, speedup " + fmt(profile.speedup_vs_lazy) +
                           "x, peak_queued " + fmt(profile.indexed.peak_queued) + " vs " +
                           fmt(profile.lazy.peak_queued));
    // The SBO contract: steady-state scheduling allocates nothing. Exact —
    // a single stray allocation per million ops is a broken inline path.
    if (profile.indexed.allocs_per_op != 0.0) {
      fail(name + ": indexed allocs_per_op = " + fmt(profile.indexed.allocs_per_op) +
           " (SBO contract requires exactly 0)");
    }
  }

  const auto cancel = current.profiles.find("cancel_heavy");
  if (cancel == current.profiles.end()) {
    fail("cancel_heavy profile missing from this run");
  } else if (cancel->second.speedup_vs_lazy < options.min_speedup) {
    fail("cancel_heavy speedup " + fmt(cancel->second.speedup_vs_lazy) +
         "x is below the " + fmt(options.min_speedup) + "x floor");
  }

  if (baseline != nullptr) {
    for (const auto& [name, base] : baseline->profiles) {
      const auto it = current.profiles.find(name);
      if (it == current.profiles.end()) {
        fail(name + ": present in the baseline but missing from this run");
        continue;
      }
      const EngineProfile& cur = it->second;
      const double speedup_floor = base.speedup_vs_lazy * (1.0 - options.tolerance);
      if (cur.speedup_vs_lazy < speedup_floor) {
        fail(name + ": speedup " + fmt(cur.speedup_vs_lazy) + "x regressed below " +
             fmt(speedup_floor) + "x (baseline " + fmt(base.speedup_vs_lazy) +
             "x, tolerance " + fmt(options.tolerance * 100.0) + "%)");
      }
      const double queue_ceiling = base.indexed.peak_queued * (1.0 + options.tolerance);
      if (cur.indexed.peak_queued > queue_ceiling) {
        fail(name + ": indexed peak_queued " + fmt(cur.indexed.peak_queued) +
             " exceeds " + fmt(queue_ceiling) + " (baseline " +
             fmt(base.indexed.peak_queued) + ", tolerance " +
             fmt(options.tolerance * 100.0) + "%)");
      }
    }
  }
  return result;
}

namespace {

bool read_case_field(const JsonValue& obj, const char* field, double& out,
                     const std::string& case_name, std::string* error) {
  const JsonValue* v = obj.find(field);
  if (v == nullptr || v->kind != JsonValue::Kind::Number) {
    if (error != nullptr) {
      *error = "case '" + case_name + "' is missing numeric field '" + field + "'";
    }
    return false;
  }
  out = v->number;
  return true;
}

// Fail-by-default case-set comparison. A baseline/current mismatch used to
// be compared over the silent intersection, which let a dropped case hide a
// regression behind a green gate; now every miss is named. Baseline-only
// misses can be waived (GateOptions::allow_case_subset — CI's --quick grids
// are strict subsets of the committed --full baselines); current-only cases
// always fail, because nothing gates them until the baseline is refreshed.
template <typename CaseMap>
void check_case_sets(const CaseMap& current, const CaseMap& baseline,
                     const GateOptions& options, const char* what, GateResult& result) {
  for (const auto& [name, value] : current) {
    (void)value;
    if (baseline.find(name) == baseline.end()) {
      result.pass = false;
      result.failures.push_back(std::string(what) + " case '" + name +
                                "' is missing from the baseline — nothing gates it; "
                                "refresh the committed baseline to cover it");
    }
  }
  for (const auto& [name, value] : baseline) {
    (void)value;
    if (current.find(name) != current.end()) {
      continue;
    }
    if (options.allow_case_subset) {
      result.notes.push_back(std::string(what) + " case '" + name +
                             "' not run this time (baseline-only miss waived by "
                             "--allow-case-subset)");
    } else {
      result.pass = false;
      result.failures.push_back(std::string(what) + " case '" + name +
                                "' is in the baseline but was not run — pass "
                                "--allow-case-subset if this quick grid is intentional");
    }
  }
}

}  // namespace

std::optional<ScaleSummary> load_scale_summary(const JsonValue& doc, std::string* error) {
  const JsonValue* schema = doc.find("schema");
  const JsonValue* tool = doc.find("tool");
  if (schema == nullptr || schema->kind != JsonValue::Kind::Number ||
      schema->number != 1.0 || tool == nullptr ||
      tool->kind != JsonValue::Kind::String || tool->string != "scale_sweep") {
    if (error != nullptr) {
      *error = "not a scale_sweep schema-1 document";
    }
    return std::nullopt;
  }
  const JsonValue* cases = doc.find("cases");
  if (cases == nullptr || cases->kind != JsonValue::Kind::Object || cases->object.empty()) {
    if (error != nullptr) {
      *error = "scale document has no 'cases' object";
    }
    return std::nullopt;
  }
  ScaleSummary summary;
  for (const auto& [name, value] : cases->object) {
    if (value.kind != JsonValue::Kind::Object) {
      if (error != nullptr) {
        *error = "case '" + name + "' is not an object";
      }
      return std::nullopt;
    }
    ScaleCase c;
    if (!read_case_field(value, "nodes", c.nodes, name, error) ||
        !read_case_field(value, "zones", c.zones, name, error) ||
        !read_case_field(value, "fan_out", c.fan_out, name, error) ||
        !read_case_field(value, "procs", c.procs, name, error) ||
        !read_case_field(value, "events", c.events, name, error) ||
        !read_case_field(value, "sim_sec", c.sim_sec, name, error) ||
        !read_case_field(value, "msgs_per_node_period", c.msgs_per_node_period, name,
                         error) ||
        !read_case_field(value, "wall_sec", c.wall_sec, name, error) ||
        !read_case_field(value, "events_per_sec", c.events_per_sec, name, error)) {
      return std::nullopt;
    }
    summary.cases.emplace(name, c);
  }
  return summary;
}

std::string render_scale_summary(const ScaleSummary& summary) {
  std::string out = "{\n  \"schema\": 1,\n  \"tool\": \"scale_sweep\",\n  \"cases\": {\n";
  std::size_t i = 0;
  for (const auto& [name, c] : summary.cases) {
    out += "    \"" + name + "\": {";
    out += "\"nodes\": " + fmt(c.nodes);
    out += ", \"zones\": " + fmt(c.zones);
    out += ", \"fan_out\": " + fmt(c.fan_out);
    out += ", \"procs\": " + fmt(c.procs);
    out += ", \"events\": " + fmt(c.events);
    out += ", \"sim_sec\": " + fmt(c.sim_sec);
    out += ", \"msgs_per_node_period\": " + fmt(c.msgs_per_node_period);
    out += ", \"wall_sec\": " + fmt(c.wall_sec);
    out += ", \"events_per_sec\": " + fmt(c.events_per_sec);
    out += ++i < summary.cases.size() ? "},\n" : "}\n";
  }
  out += "  }\n}\n";
  return out;
}

GateResult gate_scale(const ScaleSummary& current, const ScaleSummary* baseline,
                      const GateOptions& options) {
  GateResult result;
  auto fail = [&result](std::string message) {
    result.pass = false;
    result.failures.push_back(std::move(message));
  };

  double min_traffic = 0.0;
  double max_traffic = 0.0;
  bool first = true;
  for (const auto& [name, c] : current.cases) {
    result.notes.push_back(name + ": " + fmt(c.nodes) + " nodes / " + fmt(c.procs) +
                           " procs, " + fmt(c.events) + " events in " + fmt(c.wall_sec) +
                           " s wall (" + fmt(c.events_per_sec) + " ev/s), " +
                           fmt(c.msgs_per_node_period) + " msgs/node/period");
    // The O(fan_out) invariant: a daemon sends fan_out pings and answers the
    // ~fan_out pings aimed at it each period (~2x fan_out total). 3x is the
    // ceiling; an all-pairs regression would sit at ~2x(n-1) instead.
    const double ceiling = 3.0 * c.fan_out;
    if (c.msgs_per_node_period > ceiling) {
      fail(name + ": msgs_per_node_period " + fmt(c.msgs_per_node_period) +
           " exceeds the O(fan_out) ceiling " + fmt(ceiling) +
           " — per-node traffic is scaling with cluster size");
    }
    if (first || c.msgs_per_node_period < min_traffic) {
      min_traffic = c.msgs_per_node_period;
    }
    if (first || c.msgs_per_node_period > max_traffic) {
      max_traffic = c.msgs_per_node_period;
    }
    first = false;
  }
  // Size-independence across the grid: per-node traffic must not trend with
  // cluster size (all cases run the same fan_out).
  if (min_traffic > 0.0 && max_traffic > min_traffic * (1.0 + options.tolerance)) {
    fail("msgs_per_node_period spreads from " + fmt(min_traffic) + " to " +
         fmt(max_traffic) + " across cases (> " + fmt(options.tolerance * 100.0) +
         "% tolerance) — per-node traffic depends on cluster size");
  }

  if (baseline == nullptr) {
    return result;
  }

  check_case_sets(current.cases, baseline->cases, options, "scale", result);

  // Compare over the case intersection; find the smallest common case to
  // anchor the wall-time trajectory.
  const std::string* anchor = nullptr;
  double anchor_nodes = 0.0;
  for (const auto& [name, base] : baseline->cases) {
    (void)base;
    const auto it = current.cases.find(name);
    if (it != current.cases.end() &&
        (anchor == nullptr || it->second.nodes < anchor_nodes)) {
      anchor = &name;
      anchor_nodes = it->second.nodes;
    }
  }
  if (anchor == nullptr) {
    fail("baseline and current run share no scale cases");
    return result;
  }
  const ScaleCase& cur_anchor = current.cases.at(*anchor);
  const ScaleCase& base_anchor = baseline->cases.at(*anchor);

  for (const auto& [name, base] : baseline->cases) {
    const auto it = current.cases.find(name);
    if (it == current.cases.end()) {
      continue;  // already reported (or waived) by check_case_sets above
    }
    const ScaleCase& cur = it->second;
    const double event_ceiling = base.events * (1.0 + options.tolerance);
    const double event_floor = base.events * (1.0 - options.tolerance);
    if (cur.events > event_ceiling || cur.events < event_floor) {
      fail(name + ": events " + fmt(cur.events) + " outside baseline " +
           fmt(base.events) + " +/- " + fmt(options.tolerance * 100.0) + "%");
    }
    const double traffic_ceiling = base.msgs_per_node_period * (1.0 + options.tolerance);
    if (cur.msgs_per_node_period > traffic_ceiling) {
      fail(name + ": msgs_per_node_period " + fmt(cur.msgs_per_node_period) +
           " exceeds baseline " + fmt(base.msgs_per_node_period) + " + " +
           fmt(options.tolerance * 100.0) + "%");
    }
    // Trajectory: wall time relative to the smallest common case. Machine
    // speed cancels in the ratio; what remains is the scaling shape.
    if (name != *anchor && cur_anchor.wall_sec > 0.0 && base_anchor.wall_sec > 0.0 &&
        base.wall_sec > 0.0) {
      const double cur_ratio = cur.wall_sec / cur_anchor.wall_sec;
      const double base_ratio = base.wall_sec / base_anchor.wall_sec;
      if (cur_ratio > base_ratio * (1.0 + options.tolerance)) {
        fail(name + ": wall-time ratio vs " + *anchor + " is " + fmt(cur_ratio) +
             "x (baseline " + fmt(base_ratio) + "x + " +
             fmt(options.tolerance * 100.0) + "% tolerance) — scaling shape regressed");
      }
    }
  }
  return result;
}

std::optional<ParallelSummary> load_parallel_summary(const JsonValue& doc,
                                                     std::string* error) {
  const JsonValue* schema = doc.find("schema");
  const JsonValue* tool = doc.find("tool");
  if (schema == nullptr || schema->kind != JsonValue::Kind::Number ||
      schema->number != 1.0 || tool == nullptr ||
      tool->kind != JsonValue::Kind::String || tool->string != "parallel_sweep") {
    if (error != nullptr) {
      *error = "not a parallel_sweep schema-1 document";
    }
    return std::nullopt;
  }
  ParallelSummary summary;
  const JsonValue* host_cpus = doc.find("host_cpus");
  if (host_cpus == nullptr || host_cpus->kind != JsonValue::Kind::Number) {
    if (error != nullptr) {
      *error = "parallel document has no numeric 'host_cpus'";
    }
    return std::nullopt;
  }
  summary.host_cpus = host_cpus->number;
  const JsonValue* cases = doc.find("cases");
  if (cases == nullptr || cases->kind != JsonValue::Kind::Object || cases->object.empty()) {
    if (error != nullptr) {
      *error = "parallel document has no 'cases' object";
    }
    return std::nullopt;
  }
  for (const auto& [name, value] : cases->object) {
    if (value.kind != JsonValue::Kind::Object) {
      if (error != nullptr) {
        *error = "case '" + name + "' is not an object";
      }
      return std::nullopt;
    }
    ParallelCase c;
    if (!read_case_field(value, "nodes", c.nodes, name, error) ||
        !read_case_field(value, "zones", c.zones, name, error) ||
        !read_case_field(value, "procs", c.procs, name, error)) {
      return std::nullopt;
    }
    const JsonValue* runs = value.find("runs");
    if (runs == nullptr || runs->kind != JsonValue::Kind::Object || runs->object.empty()) {
      if (error != nullptr) {
        *error = "case '" + name + "' has no 'runs' object";
      }
      return std::nullopt;
    }
    for (const auto& [run_name, run_value] : runs->object) {
      const std::string key = name + "." + run_name;
      ParallelRun run;
      if (!read_case_field(run_value, "workers", run.workers, key, error) ||
          !read_case_field(run_value, "events", run.events, key, error) ||
          !read_case_field(run_value, "sim_sec", run.sim_sec, key, error) ||
          !read_case_field(run_value, "wall_sec", run.wall_sec, key, error) ||
          !read_case_field(run_value, "events_per_sec", run.events_per_sec, key, error)) {
        return std::nullopt;
      }
      c.runs.emplace(run_name, run);
    }
    if (c.runs.find("w1") == c.runs.end()) {
      if (error != nullptr) {
        *error = "case '" + name + "' has no 'w1' reference run";
      }
      return std::nullopt;
    }
    summary.cases.emplace(name, std::move(c));
  }
  return summary;
}

std::string render_parallel_summary(const ParallelSummary& summary) {
  // Counters render exactly — "%.6g" would round a 4-million event count
  // and break the bit-identity check on the next load.
  std::string out = "{\n  \"schema\": 1,\n  \"tool\": \"parallel_sweep\",\n";
  out += "  \"host_cpus\": " + fmt_exact(summary.host_cpus) + ",\n  \"cases\": {\n";
  std::size_t i = 0;
  for (const auto& [name, c] : summary.cases) {
    out += "    \"" + name + "\": {";
    out += "\"nodes\": " + fmt_exact(c.nodes);
    out += ", \"zones\": " + fmt_exact(c.zones);
    out += ", \"procs\": " + fmt_exact(c.procs);
    out += ", \"runs\": {";
    std::size_t r = 0;
    for (const auto& [run_name, run] : c.runs) {
      out += "\"" + run_name + "\": {";
      out += "\"workers\": " + fmt_exact(run.workers);
      out += ", \"events\": " + fmt_exact(run.events);
      out += ", \"sim_sec\": " + fmt_exact(run.sim_sec);
      out += ", \"wall_sec\": " + fmt(run.wall_sec);
      out += ", \"events_per_sec\": " + fmt(run.events_per_sec);
      out += ++r < c.runs.size() ? "}, " : "}";
    }
    out += "}";
    out += ++i < summary.cases.size() ? "},\n" : "}\n";
  }
  out += "  }\n}\n";
  return out;
}

GateResult gate_parallel(const ParallelSummary& current,
                         const ParallelSummary* baseline,
                         const GateOptions& options) {
  GateResult result;
  auto fail = [&result](std::string message) {
    result.pass = false;
    result.failures.push_back(std::move(message));
  };

  for (const auto& [name, c] : current.cases) {
    const ParallelRun& reference = c.runs.at("w1");
    const ParallelRun* widest = &reference;
    for (const auto& [run_name, run] : c.runs) {
      (void)run_name;
      if (run.workers > widest->workers) {
        widest = &run;
      }
      // Bit-identity: the schedule is a function of the scenario, never of
      // the worker count. Exact — any drift is a determinism bug, not noise.
      if (run.events != reference.events) {
        fail(name + "." + run_name + ": events " + fmt_exact(run.events) +
             " != w1 events " + fmt_exact(reference.events) +
             " — the partitioned schedule depends on the worker count");
      }
      if (run.sim_sec != reference.sim_sec) {
        fail(name + "." + run_name + ": sim_sec " + fmt_exact(run.sim_sec) +
             " != w1 sim_sec " + fmt_exact(reference.sim_sec) +
             " — the partitioned schedule depends on the worker count");
      }
    }
    const double speedup = widest->wall_sec > 0.0
                               ? reference.wall_sec / widest->wall_sec
                               : 0.0;
    result.notes.push_back(name + ": " + fmt(c.nodes) + " nodes, " + fmt(reference.events) +
                           " events; w1 " + fmt(reference.wall_sec) + " s, w" +
                           fmt(widest->workers) + " " + fmt(widest->wall_sec) + " s (" +
                           fmt(speedup) + "x, host_cpus " + fmt(current.host_cpus) + ")");
    // The speedup floor only means something where the hardware can deliver
    // one; a 1-CPU container still gates bit-identity and trajectory above.
    if (c.nodes >= 2000.0 && widest->workers > 1.0 &&
        current.host_cpus >= widest->workers && speedup < options.parallel_min_speedup) {
      fail(name + ": w" + fmt(widest->workers) + " speedup " + fmt(speedup) +
           "x is below the " + fmt(options.parallel_min_speedup) + "x floor on a " +
           fmt(current.host_cpus) + "-CPU host");
    }
  }

  if (baseline == nullptr) {
    return result;
  }

  check_case_sets(current.cases, baseline->cases, options, "parallel", result);

  // Intersection + trajectory, anchored at the smallest common case — the
  // same shape rule as gate_scale, applied to the w1 runs.
  const std::string* anchor = nullptr;
  double anchor_nodes = 0.0;
  for (const auto& [name, base] : baseline->cases) {
    (void)base;
    const auto it = current.cases.find(name);
    if (it != current.cases.end() &&
        (anchor == nullptr || it->second.nodes < anchor_nodes)) {
      anchor = &name;
      anchor_nodes = it->second.nodes;
    }
  }
  if (anchor == nullptr) {
    fail("baseline and current run share no parallel cases");
    return result;
  }
  const ParallelRun& cur_anchor = current.cases.at(*anchor).runs.at("w1");
  const ParallelRun& base_anchor = baseline->cases.at(*anchor).runs.at("w1");

  for (const auto& [name, base] : baseline->cases) {
    const auto it = current.cases.find(name);
    if (it == current.cases.end()) {
      continue;  // already reported (or waived) by check_case_sets above
    }
    const ParallelCase& cur = it->second;
    const double event_ceiling = base.runs.at("w1").events * (1.0 + options.tolerance);
    const double event_floor = base.runs.at("w1").events * (1.0 - options.tolerance);
    const double cur_events = cur.runs.at("w1").events;
    if (cur_events > event_ceiling || cur_events < event_floor) {
      fail(name + ": events " + fmt(cur_events) + " outside baseline " +
           fmt(base.runs.at("w1").events) + " +/- " + fmt(options.tolerance * 100.0) + "%");
    }
    if (name != *anchor && cur_anchor.wall_sec > 0.0 && base_anchor.wall_sec > 0.0 &&
        base.runs.at("w1").wall_sec > 0.0) {
      const double cur_ratio = cur.runs.at("w1").wall_sec / cur_anchor.wall_sec;
      const double base_ratio = base.runs.at("w1").wall_sec / base_anchor.wall_sec;
      if (cur_ratio > base_ratio * (1.0 + options.tolerance)) {
        fail(name + ": w1 wall-time ratio vs " + *anchor + " is " + fmt(cur_ratio) +
             "x (baseline " + fmt(base_ratio) + "x + " + fmt(options.tolerance * 100.0) +
             "% tolerance) — scaling shape regressed");
      }
    }
  }
  return result;
}

std::optional<CacheSummary> load_cache_summary(const JsonValue& doc, std::string* error) {
  const JsonValue* schema = doc.find("schema");
  const JsonValue* tool = doc.find("tool");
  if (schema == nullptr || schema->kind != JsonValue::Kind::Number ||
      schema->number != 1.0 || tool == nullptr ||
      tool->kind != JsonValue::Kind::String || tool->string != "cache_ablation") {
    if (error != nullptr) {
      *error = "not a cache_ablation schema-1 document";
    }
    return std::nullopt;
  }
  const JsonValue* cases = doc.find("cases");
  if (cases == nullptr || cases->kind != JsonValue::Kind::Object || cases->object.empty()) {
    if (error != nullptr) {
      *error = "cache document has no 'cases' object";
    }
    return std::nullopt;
  }
  CacheSummary summary;
  for (const auto& [name, value] : cases->object) {
    if (value.kind != JsonValue::Kind::Object) {
      if (error != nullptr) {
        *error = "case '" + name + "' is not an object";
      }
      return std::nullopt;
    }
    CacheCase c;
    if (!read_case_field(value, "wss_kib", c.wss_kib, name, error) ||
        !read_case_field(value, "nodes", c.nodes, name, error) ||
        !read_case_field(value, "procs", c.procs, name, error)) {
      return std::nullopt;
    }
    const JsonValue* policies = value.find("policies");
    if (policies == nullptr || policies->kind != JsonValue::Kind::Object ||
        policies->object.empty()) {
      if (error != nullptr) {
        *error = "case '" + name + "' has no 'policies' object";
      }
      return std::nullopt;
    }
    for (const auto& [policy_name, policy_value] : policies->object) {
      const std::string key = name + "." + policy_name;
      CachePolicyRun run;
      if (!read_case_field(policy_value, "migrations", run.migrations, key, error) ||
          !read_case_field(policy_value, "warmup_charged_ms", run.warmup_charged_ms, key,
                           error) ||
          !read_case_field(policy_value, "warmup_paid_ms", run.warmup_paid_ms, key,
                           error) ||
          !read_case_field(policy_value, "makespan_sec", run.makespan_sec, key, error)) {
        return std::nullopt;
      }
      c.policies.emplace(policy_name, run);
    }
    summary.cases.emplace(name, std::move(c));
  }
  return summary;
}

std::string render_cache_summary(const CacheSummary& summary) {
  // Every field is simulation-deterministic; counters render exactly so a
  // one-migration drift survives the round-trip and fails the comparison.
  std::string out = "{\n  \"schema\": 1,\n  \"tool\": \"cache_ablation\",\n  \"cases\": {\n";
  std::size_t i = 0;
  for (const auto& [name, c] : summary.cases) {
    out += "    \"" + name + "\": {";
    out += "\"wss_kib\": " + fmt_exact(c.wss_kib);
    out += ", \"nodes\": " + fmt_exact(c.nodes);
    out += ", \"procs\": " + fmt_exact(c.procs);
    out += ", \"policies\": {";
    std::size_t p = 0;
    for (const auto& [policy_name, run] : c.policies) {
      out += "\"" + policy_name + "\": {";
      out += "\"migrations\": " + fmt_exact(run.migrations);
      out += ", \"warmup_charged_ms\": " + fmt_exact(run.warmup_charged_ms);
      out += ", \"warmup_paid_ms\": " + fmt_exact(run.warmup_paid_ms);
      out += ", \"makespan_sec\": " + fmt_exact(run.makespan_sec);
      out += ++p < c.policies.size() ? "}, " : "}";
    }
    out += "}";
    out += ++i < summary.cases.size() ? "},\n" : "}\n";
  }
  out += "  }\n}\n";
  return out;
}

GateResult gate_cache(const CacheSummary& current, const CacheSummary* baseline,
                      const GateOptions& options) {
  GateResult result;
  auto fail = [&result](std::string message) {
    result.pass = false;
    result.failures.push_back(std::move(message));
  };

  constexpr const char* kPolicyNames[] = {"load", "eq3", "cache"};
  double load_total_ms = 0.0;
  double cache_total_ms = 0.0;
  for (const auto& [name, c] : current.cases) {
    bool complete = true;
    for (const char* policy : kPolicyNames) {
      if (c.policies.find(policy) == c.policies.end()) {
        fail(name + ": policy '" + std::string(policy) +
             "' missing — the ablation must run all three placements");
        complete = false;
      }
    }
    if (!complete) {
      continue;
    }
    const CachePolicyRun& load_run = c.policies.at("load");
    const CachePolicyRun& cache_run = c.policies.at("cache");
    load_total_ms += load_run.warmup_charged_ms;
    cache_total_ms += cache_run.warmup_charged_ms;
    result.notes.push_back(name + ": wss " + fmt(c.wss_kib) + " KiB; warm-up charged " +
                           fmt(load_run.warmup_charged_ms) + " ms (load) / " +
                           fmt(c.policies.at("eq3").warmup_charged_ms) + " ms (eq3) / " +
                           fmt(cache_run.warmup_charged_ms) + " ms (cache)");
  }
  // The acceptance bar: under contention, cache-aware placement must
  // strictly reduce the total warm-up delay vs the load-greedy pick.
  if (!current.cases.empty() && result.pass && cache_total_ms >= load_total_ms) {
    fail("cache-aware total warm-up " + fmt(cache_total_ms) +
         " ms is not strictly below the load policy's " + fmt(load_total_ms) +
         " ms — the cost model is not steering placement");
  }

  if (baseline == nullptr) {
    return result;
  }

  check_case_sets(current.cases, baseline->cases, options, "cache", result);

  for (const auto& [name, base] : baseline->cases) {
    const auto it = current.cases.find(name);
    if (it == current.cases.end()) {
      continue;  // already reported (or waived) by check_case_sets above
    }
    const CacheCase& cur = it->second;
    for (const auto& [policy_name, base_run] : base.policies) {
      const auto run_it = cur.policies.find(policy_name);
      if (run_it == cur.policies.end()) {
        continue;  // the three-policy invariant above already failed this
      }
      const CachePolicyRun& cur_run = run_it->second;
      const double migration_ceiling = base_run.migrations * (1.0 + options.tolerance);
      if (cur_run.migrations > migration_ceiling) {
        fail(name + "." + policy_name + ": migrations " + fmt(cur_run.migrations) +
             " exceed baseline " + fmt(base_run.migrations) + " + " +
             fmt(options.tolerance * 100.0) + "%");
      }
      const double charge_ceiling = base_run.warmup_charged_ms * (1.0 + options.tolerance);
      if (cur_run.warmup_charged_ms > charge_ceiling) {
        fail(name + "." + policy_name + ": warmup_charged_ms " +
             fmt(cur_run.warmup_charged_ms) + " exceeds baseline " +
             fmt(base_run.warmup_charged_ms) + " + " + fmt(options.tolerance * 100.0) +
             "%");
      }
    }
  }
  return result;
}

}  // namespace ampom::perfgate
