#pragma once
// perf_gate — the continuous-performance comparator behind BENCH_simcore.json.
//
// bench/micro_simcore emits google-benchmark JSON for three engine profiles
// (schedule_heavy, cancel_heavy, mixed), each run against both the indexed
// event queue and the retired lazy-delete reference engine that lives inside
// the bench binary. This tool:
//
//   1. normalizes that raw JSON into the flat committed schema
//      (BENCH_simcore.json):
//        {"schema":1,"tool":"perf_gate","profiles":{
//          "cancel_heavy":{"indexed":{...},"lazy":{...},"speedup_vs_lazy":S},
//          ...}}
//   2. gates the run. Absolute throughput is machine-dependent and therefore
//      only informational; the gate checks the machine-independent facts:
//        - every indexed profile performs ZERO heap allocations per engine
//          op (the SBO callback contract), exactly;
//        - the cancel_heavy speedup over the lazy engine meets the hard
//          floor (default 1.5x, the paper-repro acceptance bar);
//        - against a committed baseline, each profile's speedup has not
//          regressed by more than --tolerance (default 30%), and the
//          indexed peak queued-entry count (deterministic for the fixed
//          workload) has not grown past baseline * (1 + tolerance).
//
// No external JSON dependency: the parser below covers exactly the two flat
// schemas this tool reads.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ampom::perfgate {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind{Kind::Null};
  bool boolean{false};
  double number{0.0};
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;  // ordered: renders deterministically

  // Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
};

// Parse a JSON document. On failure returns nullopt and, if `error` is
// non-null, a one-line description with the byte offset.
[[nodiscard]] std::optional<JsonValue> parse_json(const std::string& text,
                                                  std::string* error);

struct ProfileMetrics {
  double events_per_sec{0.0};
  double allocs_per_op{0.0};
  double peak_queued{0.0};
};

struct EngineProfile {
  ProfileMetrics indexed;
  ProfileMetrics lazy;
  double speedup_vs_lazy{0.0};  // indexed.events_per_sec / lazy.events_per_sec
};

struct Summary {
  std::map<std::string, EngineProfile> profiles;
};

// Extract the profile pairs from raw google-benchmark output
// (--benchmark_out_format=json). Fails if any expected benchmark or counter
// is missing — a silently dropped profile must not read as a pass.
[[nodiscard]] std::optional<Summary> summarize_raw(const JsonValue& raw,
                                                   std::string* error);

// Serialize / load the committed normalized schema.
[[nodiscard]] std::string render_summary(const Summary& summary);
[[nodiscard]] std::optional<Summary> load_summary(const JsonValue& doc,
                                                  std::string* error);

struct GateOptions {
  double tolerance{0.30};   // allowed fractional regression vs the baseline
  double min_speedup{1.5};  // hard floor for the cancel_heavy speedup
  // Hard floor for the partitioned engine: wall-clock speedup of the largest
  // worker count over workers=1 on the >= 2000-node cases, enforced only
  // when the recording host has at least that many CPUs.
  double parallel_min_speedup{2.0};
  // Case-set mismatches between baseline and current are failures by
  // default: a silently shrunken grid once hid a regressed case behind a
  // green gate. Setting this waives *baseline-only* misses (CI's --quick
  // grids are strict subsets of the committed --full baselines); cases the
  // baseline has never seen still fail — they need a baseline refresh.
  bool allow_case_subset{false};
};

struct GateResult {
  bool pass{true};
  std::vector<std::string> failures;
  std::vector<std::string> notes;  // informational (absolute throughput etc.)
};

// Gate `current`; `baseline` may be null (invariants only, used when
// generating the first committed baseline).
[[nodiscard]] GateResult gate(const Summary& current, const Summary* baseline,
                              const GateOptions& options);

// --- scale sweep (BENCH_scale.json) ----------------------------------------
// bench/scale_sweep emits the committed schema directly:
//   {"schema":1,"tool":"scale_sweep","cases":{"n64":{...},...}}
// The deterministic fields (events, sim_sec, msgs_per_node_period) are
// gated; wall_sec and events_per_sec are machine-dependent and only feed
// the normalized trajectory check.

struct ScaleCase {
  double nodes{0};
  double zones{0};
  double fan_out{0};
  double procs{0};
  double events{0};
  double sim_sec{0};
  double msgs_per_node_period{0};
  double wall_sec{0};        // informational
  double events_per_sec{0};  // informational
};

struct ScaleSummary {
  std::map<std::string, ScaleCase> cases;
};

[[nodiscard]] std::optional<ScaleSummary> load_scale_summary(const JsonValue& doc,
                                                             std::string* error);
[[nodiscard]] std::string render_scale_summary(const ScaleSummary& summary);

// Gate the scale sweep. Invariants (always): per-node daemon traffic stays
// O(fan_out) — at most 3x fan_out sends per period — and is size-independent
// across cases (max/min within the tolerance). Against a baseline, compared
// over the case intersection only (the committed baseline carries the --full
// grid; CI runs --quick): deterministic event counts and per-node traffic
// within tolerance, plus the wall-time trajectory — each case's wall time
// normalized to the smallest common case must not outgrow the baseline's
// shape by more than the tolerance (catches reintroduced O(n^2) work even
// though absolute wall time is machine-dependent).
[[nodiscard]] GateResult gate_scale(const ScaleSummary& current,
                                    const ScaleSummary* baseline,
                                    const GateOptions& options);

// --- parallel sweep (BENCH_parallel.json) -----------------------------------
// bench/parallel_sweep runs the same cluster world at several worker counts
// and emits the committed schema directly:
//   {"schema":1,"tool":"parallel_sweep","host_cpus":8,"cases":{
//     "n2000":{"nodes":...,"zones":...,"procs":...,"runs":{
//       "w1":{"workers":1,"events":...,"sim_sec":...,"wall_sec":...,...},
//       "w4":{...}}}}}
// events and sim_sec are deterministic and must be *exactly* equal across a
// case's worker counts (the bit-identity contract); wall_sec is
// machine-dependent and feeds the speedup and trajectory checks.

struct ParallelRun {
  double workers{0};
  double events{0};
  double sim_sec{0};
  double wall_sec{0};        // informational
  double events_per_sec{0};  // informational
};

struct ParallelCase {
  double nodes{0};
  double zones{0};
  double procs{0};
  std::map<std::string, ParallelRun> runs;  // "w1", "w2", ... (w1 required)
};

struct ParallelSummary {
  double host_cpus{0};  // recorded by the run; conditions the speedup floor
  std::map<std::string, ParallelCase> cases;
};

[[nodiscard]] std::optional<ParallelSummary> load_parallel_summary(const JsonValue& doc,
                                                                   std::string* error);
[[nodiscard]] std::string render_parallel_summary(const ParallelSummary& summary);

// Gate the parallel sweep. Invariants (always): within every case, each
// run's events and sim_sec exactly equal the w1 run's — any drift means the
// partitioned schedule depends on the worker count, which is the one bug
// this engine must never have. Speedup floor: on cases of >= 2000 nodes,
// the largest worker count must be at least `parallel_min_speedup` times
// faster than w1 — enforced only when the recording host had at least that
// many CPUs (a 1-CPU CI container cannot speed anything up; its file still
// gates bit-identity and trajectory). Against a baseline, over the case
// intersection: per-run events within the tolerance and the w1 wall-time
// trajectory (normalized to the smallest common case) within the tolerance,
// same shape rule as gate_scale.
[[nodiscard]] GateResult gate_parallel(const ParallelSummary& current,
                                       const ParallelSummary* baseline,
                                       const GateOptions& options);

// --- cache ablation (BENCH_cache.json) ---------------------------------------
// bench/cache_ablation runs the same contended cluster world under each
// placement policy (load / eq3 / cache) across a WSS sweep and emits the
// committed schema directly:
//   {"schema":1,"tool":"cache_ablation","cases":{
//     "wss4096k":{"wss_kib":4096,"nodes":...,"procs":...,"policies":{
//       "load":{"migrations":...,"warmup_charged_ms":...,"warmup_paid_ms":...,
//               "makespan_sec":...},
//       "eq3":{...},"cache":{...}}}}}
// Every field is simulation-deterministic (no wall clock), so the gate is
// fully machine-independent.

struct CachePolicyRun {
  double migrations{0};
  double warmup_charged_ms{0};
  double warmup_paid_ms{0};
  double makespan_sec{0};
};

struct CacheCase {
  double wss_kib{0};
  double nodes{0};
  double procs{0};
  std::map<std::string, CachePolicyRun> policies;  // "load", "eq3", "cache"
};

struct CacheSummary {
  std::map<std::string, CacheCase> cases;
};

[[nodiscard]] std::optional<CacheSummary> load_cache_summary(const JsonValue& doc,
                                                             std::string* error);
[[nodiscard]] std::string render_cache_summary(const CacheSummary& summary);

// Gate the cache ablation. Invariants (always): every case carries all
// three policies, and the cache-aware policy's total warm-up charge across
// the sweep is strictly below the load policy's — the cost model must
// actually buy something under contention, or the placement tie-breaks
// regressed. Against a baseline: per-case, per-policy warm-up charges and
// migration counts within the tolerance, with the same fail-by-default
// case-mismatch rule as gate_scale.
[[nodiscard]] GateResult gate_cache(const CacheSummary& current,
                                    const CacheSummary* baseline,
                                    const GateOptions& options);

}  // namespace ampom::perfgate
