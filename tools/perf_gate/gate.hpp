#pragma once
// perf_gate — the continuous-performance comparator behind BENCH_simcore.json.
//
// bench/micro_simcore emits google-benchmark JSON for three engine profiles
// (schedule_heavy, cancel_heavy, mixed), each run against both the indexed
// event queue and the retired lazy-delete reference engine that lives inside
// the bench binary. This tool:
//
//   1. normalizes that raw JSON into the flat committed schema
//      (BENCH_simcore.json):
//        {"schema":1,"tool":"perf_gate","profiles":{
//          "cancel_heavy":{"indexed":{...},"lazy":{...},"speedup_vs_lazy":S},
//          ...}}
//   2. gates the run. Absolute throughput is machine-dependent and therefore
//      only informational; the gate checks the machine-independent facts:
//        - every indexed profile performs ZERO heap allocations per engine
//          op (the SBO callback contract), exactly;
//        - the cancel_heavy speedup over the lazy engine meets the hard
//          floor (default 1.5x, the paper-repro acceptance bar);
//        - against a committed baseline, each profile's speedup has not
//          regressed by more than --tolerance (default 30%), and the
//          indexed peak queued-entry count (deterministic for the fixed
//          workload) has not grown past baseline * (1 + tolerance).
//
// No external JSON dependency: the parser below covers exactly the two flat
// schemas this tool reads.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ampom::perfgate {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind{Kind::Null};
  bool boolean{false};
  double number{0.0};
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;  // ordered: renders deterministically

  // Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
};

// Parse a JSON document. On failure returns nullopt and, if `error` is
// non-null, a one-line description with the byte offset.
[[nodiscard]] std::optional<JsonValue> parse_json(const std::string& text,
                                                  std::string* error);

struct ProfileMetrics {
  double events_per_sec{0.0};
  double allocs_per_op{0.0};
  double peak_queued{0.0};
};

struct EngineProfile {
  ProfileMetrics indexed;
  ProfileMetrics lazy;
  double speedup_vs_lazy{0.0};  // indexed.events_per_sec / lazy.events_per_sec
};

struct Summary {
  std::map<std::string, EngineProfile> profiles;
};

// Extract the profile pairs from raw google-benchmark output
// (--benchmark_out_format=json). Fails if any expected benchmark or counter
// is missing — a silently dropped profile must not read as a pass.
[[nodiscard]] std::optional<Summary> summarize_raw(const JsonValue& raw,
                                                   std::string* error);

// Serialize / load the committed normalized schema.
[[nodiscard]] std::string render_summary(const Summary& summary);
[[nodiscard]] std::optional<Summary> load_summary(const JsonValue& doc,
                                                  std::string* error);

struct GateOptions {
  double tolerance{0.30};   // allowed fractional regression vs the baseline
  double min_speedup{1.5};  // hard floor for the cancel_heavy speedup
};

struct GateResult {
  bool pass{true};
  std::vector<std::string> failures;
  std::vector<std::string> notes;  // informational (absolute throughput etc.)
};

// Gate `current`; `baseline` may be null (invariants only, used when
// generating the first committed baseline).
[[nodiscard]] GateResult gate(const Summary& current, const Summary* baseline,
                              const GateOptions& options);

}  // namespace ampom::perfgate
