// perf_gate CLI.
//
//   perf_gate --input=raw.json [--baseline=BENCH_simcore.json]
//             [--output=FILE] [--tolerance=0.30] [--min-speedup=1.5]
//   perf_gate --scale-input=scale.json [--scale-baseline=BENCH_scale.json]
//             [--scale-output=FILE] [--tolerance=0.30]
//   perf_gate --parallel-input=parallel.json [--parallel-baseline=BENCH_parallel.json]
//             [--parallel-output=FILE] [--tolerance=0.30] [--parallel-min-speedup=2.0]
//   perf_gate --cache-input=cache.json [--cache-baseline=BENCH_cache.json]
//             [--cache-output=FILE] [--tolerance=0.30]
//
// Engine mode reads bench/micro_simcore's --benchmark_out JSON, normalizes
// it to the committed BENCH_simcore.json schema (written to --output when
// given) and gates it: machine-independent invariants always, trajectory
// checks when a --baseline is supplied. Scale mode does the same for
// bench/scale_sweep --json output against BENCH_scale.json (O(fan_out)
// per-node traffic, deterministic event counts, wall-time trajectory).
// Parallel mode gates bench/parallel_sweep --json output against
// BENCH_parallel.json (bit-identity across worker counts, the conditional
// speedup floor, w1 wall-time trajectory).
// The modes may be combined in one invocation; the gate passes only if
// every requested mode passes. Exit 0 on pass, 1 on gate failure, 2 on
// usage or parse errors.

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "perf_gate/gate.hpp"

namespace {

using namespace ampom::perfgate;

struct Options {
  std::string input;
  std::string baseline;
  std::string output;
  std::string scale_input;
  std::string scale_baseline;
  std::string scale_output;
  std::string parallel_input;
  std::string parallel_baseline;
  std::string parallel_output;
  std::string cache_input;
  std::string cache_baseline;
  std::string cache_output;
  GateOptions gate;
};

bool parse_double(const std::string& text, double& out) {
  std::istringstream stream{text};
  return static_cast<bool>(stream >> out) && stream.eof() && out >= 0.0;
}

std::optional<Options> parse_args(int argc, char** argv, std::string& error) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--input=", 0) == 0) {
      options.input = value_of("--input=");
    } else if (arg.rfind("--baseline=", 0) == 0) {
      options.baseline = value_of("--baseline=");
    } else if (arg.rfind("--output=", 0) == 0) {
      options.output = value_of("--output=");
    } else if (arg.rfind("--scale-input=", 0) == 0) {
      options.scale_input = value_of("--scale-input=");
    } else if (arg.rfind("--scale-baseline=", 0) == 0) {
      options.scale_baseline = value_of("--scale-baseline=");
    } else if (arg.rfind("--scale-output=", 0) == 0) {
      options.scale_output = value_of("--scale-output=");
    } else if (arg.rfind("--parallel-input=", 0) == 0) {
      options.parallel_input = value_of("--parallel-input=");
    } else if (arg.rfind("--parallel-baseline=", 0) == 0) {
      options.parallel_baseline = value_of("--parallel-baseline=");
    } else if (arg.rfind("--parallel-output=", 0) == 0) {
      options.parallel_output = value_of("--parallel-output=");
    } else if (arg.rfind("--cache-input=", 0) == 0) {
      options.cache_input = value_of("--cache-input=");
    } else if (arg.rfind("--cache-baseline=", 0) == 0) {
      options.cache_baseline = value_of("--cache-baseline=");
    } else if (arg.rfind("--cache-output=", 0) == 0) {
      options.cache_output = value_of("--cache-output=");
    } else if (arg == "--allow-case-subset") {
      options.gate.allow_case_subset = true;
    } else if (arg.rfind("--parallel-min-speedup=", 0) == 0) {
      if (!parse_double(value_of("--parallel-min-speedup="),
                        options.gate.parallel_min_speedup)) {
        error = "invalid --parallel-min-speedup value";
        return std::nullopt;
      }
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      if (!parse_double(value_of("--tolerance="), options.gate.tolerance)) {
        error = "invalid --tolerance value";
        return std::nullopt;
      }
    } else if (arg.rfind("--min-speedup=", 0) == 0) {
      if (!parse_double(value_of("--min-speedup="), options.gate.min_speedup)) {
        error = "invalid --min-speedup value";
        return std::nullopt;
      }
    } else {
      error = "unknown argument: " + arg;
      return std::nullopt;
    }
  }
  if (options.input.empty() && options.scale_input.empty() &&
      options.parallel_input.empty() && options.cache_input.empty()) {
    error = "--input=FILE, --scale-input=FILE, --parallel-input=FILE or "
            "--cache-input=FILE is required";
    return std::nullopt;
  }
  return options;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::optional<Summary> load_summary_file(const std::string& path, std::string& error) {
  const auto text = read_file(path);
  if (!text) {
    error = "cannot read " + path;
    return std::nullopt;
  }
  std::string parse_error;
  const auto doc = parse_json(*text, &parse_error);
  if (!doc) {
    error = path + ": " + parse_error;
    return std::nullopt;
  }
  auto summary = load_summary(*doc, &parse_error);
  if (!summary) {
    error = path + ": " + parse_error;
  }
  return summary;
}

std::optional<ScaleSummary> load_scale_file(const std::string& path, std::string& error) {
  const auto text = read_file(path);
  if (!text) {
    error = "cannot read " + path;
    return std::nullopt;
  }
  std::string parse_error;
  const auto doc = parse_json(*text, &parse_error);
  if (!doc) {
    error = path + ": " + parse_error;
    return std::nullopt;
  }
  auto summary = load_scale_summary(*doc, &parse_error);
  if (!summary) {
    error = path + ": " + parse_error;
  }
  return summary;
}

std::optional<ParallelSummary> load_parallel_file(const std::string& path,
                                                  std::string& error) {
  const auto text = read_file(path);
  if (!text) {
    error = "cannot read " + path;
    return std::nullopt;
  }
  std::string parse_error;
  const auto doc = parse_json(*text, &parse_error);
  if (!doc) {
    error = path + ": " + parse_error;
    return std::nullopt;
  }
  auto summary = load_parallel_summary(*doc, &parse_error);
  if (!summary) {
    error = path + ": " + parse_error;
  }
  return summary;
}

std::optional<CacheSummary> load_cache_file(const std::string& path, std::string& error) {
  const auto text = read_file(path);
  if (!text) {
    error = "cannot read " + path;
    return std::nullopt;
  }
  std::string parse_error;
  const auto doc = parse_json(*text, &parse_error);
  if (!doc) {
    error = path + ": " + parse_error;
    return std::nullopt;
  }
  auto summary = load_cache_summary(*doc, &parse_error);
  if (!summary) {
    error = path + ": " + parse_error;
  }
  return summary;
}

// Print a gate result; returns its exit code (0 pass, 1 fail).
int report(const GateResult& result, const char* mode, bool had_baseline) {
  for (const std::string& note : result.notes) {
    std::cout << "perf_gate: " << note << "\n";
  }
  for (const std::string& failure : result.failures) {
    std::cout << "perf_gate: FAIL: " << failure << "\n";
  }
  if (!result.pass) {
    std::cout << "perf_gate: " << mode << " gate FAILED (" << result.failures.size()
              << " check" << (result.failures.size() == 1 ? "" : "s") << ")\n";
    return 1;
  }
  std::cout << "perf_gate: " << mode << " gate passed"
            << (had_baseline ? " (invariants + baseline trajectory)"
                             : " (invariants only)")
            << "\n";
  return 0;
}

// The scale-sweep mode: load, optionally re-render, gate. Returns an exit
// code (0/1/2) like main.
int run_scale_mode(const Options& options) {
  std::string error;
  const auto current = load_scale_file(options.scale_input, error);
  if (!current) {
    std::cerr << "perf_gate: " << error << "\n";
    return 2;
  }
  std::optional<ScaleSummary> baseline;
  if (!options.scale_baseline.empty()) {
    baseline = load_scale_file(options.scale_baseline, error);
    if (!baseline) {
      std::cerr << "perf_gate: " << error << "\n";
      return 2;
    }
  }
  if (!options.scale_output.empty()) {
    std::ofstream out{options.scale_output, std::ios::binary};
    if (!out) {
      std::cerr << "perf_gate: cannot write " << options.scale_output << "\n";
      return 2;
    }
    out << render_scale_summary(*current);
  }
  const GateResult result =
      gate_scale(*current, baseline ? &*baseline : nullptr, options.gate);
  return report(result, "scale", baseline.has_value());
}

// The parallel-sweep mode, same shape as run_scale_mode.
int run_parallel_mode(const Options& options) {
  std::string error;
  const auto current = load_parallel_file(options.parallel_input, error);
  if (!current) {
    std::cerr << "perf_gate: " << error << "\n";
    return 2;
  }
  std::optional<ParallelSummary> baseline;
  if (!options.parallel_baseline.empty()) {
    baseline = load_parallel_file(options.parallel_baseline, error);
    if (!baseline) {
      std::cerr << "perf_gate: " << error << "\n";
      return 2;
    }
  }
  if (!options.parallel_output.empty()) {
    std::ofstream out{options.parallel_output, std::ios::binary};
    if (!out) {
      std::cerr << "perf_gate: cannot write " << options.parallel_output << "\n";
      return 2;
    }
    out << render_parallel_summary(*current);
  }
  const GateResult result =
      gate_parallel(*current, baseline ? &*baseline : nullptr, options.gate);
  return report(result, "parallel", baseline.has_value());
}

// The cache-ablation mode, same shape as run_scale_mode.
int run_cache_mode(const Options& options) {
  std::string error;
  const auto current = load_cache_file(options.cache_input, error);
  if (!current) {
    std::cerr << "perf_gate: " << error << "\n";
    return 2;
  }
  std::optional<CacheSummary> baseline;
  if (!options.cache_baseline.empty()) {
    baseline = load_cache_file(options.cache_baseline, error);
    if (!baseline) {
      std::cerr << "perf_gate: " << error << "\n";
      return 2;
    }
  }
  if (!options.cache_output.empty()) {
    std::ofstream out{options.cache_output, std::ios::binary};
    if (!out) {
      std::cerr << "perf_gate: cannot write " << options.cache_output << "\n";
      return 2;
    }
    out << render_cache_summary(*current);
  }
  const GateResult result =
      gate_cache(*current, baseline ? &*baseline : nullptr, options.gate);
  return report(result, "cache", baseline.has_value());
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  const auto options = parse_args(argc, argv, error);
  if (!options) {
    std::cerr << "perf_gate: " << error << "\n"
              << "usage: perf_gate --input=raw.json [--baseline=FILE] [--output=FILE]"
                 " [--tolerance=0.30] [--min-speedup=1.5]\n"
                 "       perf_gate --scale-input=scale.json [--scale-baseline=FILE]"
                 " [--scale-output=FILE] [--tolerance=0.30]\n"
                 "       perf_gate --parallel-input=parallel.json"
                 " [--parallel-baseline=FILE] [--parallel-output=FILE]"
                 " [--tolerance=0.30] [--parallel-min-speedup=2.0]\n"
                 "       perf_gate --cache-input=cache.json [--cache-baseline=FILE]"
                 " [--cache-output=FILE] [--tolerance=0.30]\n"
                 "       any mode: --allow-case-subset waives baseline-only case misses"
                 " (quick grids)\n";
    return 2;
  }

  int scale_rc = 0;
  if (!options->scale_input.empty()) {
    scale_rc = run_scale_mode(*options);
    if (scale_rc == 2) {
      return 2;
    }
  }
  if (!options->parallel_input.empty()) {
    const int parallel_rc = run_parallel_mode(*options);
    if (parallel_rc == 2) {
      return 2;
    }
    scale_rc = scale_rc != 0 ? scale_rc : parallel_rc;
  }
  if (!options->cache_input.empty()) {
    const int cache_rc = run_cache_mode(*options);
    if (cache_rc == 2) {
      return 2;
    }
    scale_rc = scale_rc != 0 ? scale_rc : cache_rc;
  }
  if (options->input.empty()) {
    return scale_rc;
  }

  const auto raw_text = read_file(options->input);
  if (!raw_text) {
    std::cerr << "perf_gate: cannot read " << options->input << "\n";
    return 2;
  }
  std::string parse_error;
  const auto raw = parse_json(*raw_text, &parse_error);
  if (!raw) {
    std::cerr << "perf_gate: " << options->input << ": " << parse_error << "\n";
    return 2;
  }
  const auto current = summarize_raw(*raw, &parse_error);
  if (!current) {
    std::cerr << "perf_gate: " << options->input << ": " << parse_error << "\n";
    return 2;
  }

  std::optional<Summary> baseline;
  if (!options->baseline.empty()) {
    baseline = load_summary_file(options->baseline, error);
    if (!baseline) {
      std::cerr << "perf_gate: " << error << "\n";
      return 2;
    }
  }

  if (!options->output.empty()) {
    std::ofstream out{options->output, std::ios::binary};
    if (!out) {
      std::cerr << "perf_gate: cannot write " << options->output << "\n";
      return 2;
    }
    out << render_summary(*current);
  }

  const GateResult result =
      gate(*current, baseline ? &*baseline : nullptr, options->gate);
  const int engine_rc = report(result, "engine", baseline.has_value());
  return engine_rc != 0 ? engine_rc : scale_rc;
}
